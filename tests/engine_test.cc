// Unit tests for the discrete-event engine: ordering, determinism,
// run-control semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace glb::sim {
namespace {

TEST(Engine, StartsAtCycleZeroIdle) {
  Engine e;
  EXPECT_EQ(e.Now(), 0u);
  EXPECT_TRUE(e.idle());
  EXPECT_TRUE(e.RunUntilIdle());
}

TEST(Engine, EventsFireAtScheduledCycle) {
  Engine e;
  Cycle seen = kCycleNever;
  e.ScheduleAt(17, [&]() { seen = e.Now(); });
  EXPECT_TRUE(e.RunUntilIdle());
  EXPECT_EQ(seen, 17u);
  EXPECT_EQ(e.Now(), 17u);
}

TEST(Engine, SameCycleEventsRunInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(5, [&]() { order.push_back(1); });
  e.ScheduleAt(5, [&]() { order.push_back(2); });
  e.ScheduleAt(5, [&]() { order.push_back(3); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, CrossCycleOrdering) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(10, [&]() { order.push_back(10); });
  e.ScheduleAt(3, [&]() { order.push_back(3); });
  e.ScheduleAt(7, [&]() { order.push_back(7); });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{3, 7, 10}));
}

TEST(Engine, ZeroDelayRunsLaterSameCycle) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(4, [&]() {
    order.push_back(1);
    e.ScheduleIn(0, [&]() { order.push_back(3); });
    order.push_back(2);
  });
  e.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), 4u);
}

TEST(Engine, NestedSchedulingChains) {
  Engine e;
  Cycle final_cycle = 0;
  e.ScheduleAt(1, [&]() {
    e.ScheduleIn(2, [&]() {
      e.ScheduleIn(3, [&]() { final_cycle = e.Now(); });
    });
  });
  e.RunUntilIdle();
  EXPECT_EQ(final_cycle, 6u);
}

TEST(Engine, RunUntilIdleHonoursCycleLimit) {
  Engine e;
  bool late_ran = false;
  e.ScheduleAt(5, []() {});
  e.ScheduleAt(100, [&]() { late_ran = true; });
  EXPECT_FALSE(e.RunUntilIdle(50));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(e.pending_events(), 1u);
  EXPECT_TRUE(e.RunUntilIdle());
  EXPECT_TRUE(late_ran);
}

TEST(Engine, RunUntilIdleStatusDescribesStalls) {
  Engine e;
  e.ScheduleAt(5, []() {});
  e.ScheduleAt(100, []() {});
  const RunStatus stalled = e.RunUntilIdleStatus(50);
  EXPECT_FALSE(stalled.idle);
  EXPECT_FALSE(static_cast<bool>(stalled));
  EXPECT_EQ(stalled.now, 5u);
  EXPECT_EQ(stalled.pending_events, 1u);
  EXPECT_EQ(stalled.next_event_at, 100u);
  const std::string msg = stalled.DescribeStall();
  EXPECT_NE(msg.find("simulation stalled at cycle 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("pending events: 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("earliest pending at cycle 100"), std::string::npos) << msg;

  const RunStatus done = e.RunUntilIdleStatus();
  EXPECT_TRUE(done.idle);
  EXPECT_TRUE(static_cast<bool>(done));
  EXPECT_EQ(done.pending_events, 0u);
  EXPECT_EQ(done.next_event_at, kCycleNever);
  EXPECT_EQ(done.DescribeStall(), "");
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.RunUntil(123);
  EXPECT_EQ(e.Now(), 123u);
}

TEST(Engine, RunUntilProcessesOnlyDueEvents) {
  Engine e;
  int ran = 0;
  e.ScheduleAt(10, [&]() { ++ran; });
  e.ScheduleAt(20, [&]() { ++ran; });
  e.RunUntil(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.Now(), 15u);
  e.RunUntilIdle();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, EventCountTracksProcessing) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.ScheduleAt(static_cast<Cycle>(i), []() {});
  e.RunUntilIdle();
  EXPECT_EQ(e.events_processed(), 10u);
}

TEST(Engine, ManyEventsStressOrdering) {
  // Events inserted in pseudo-random cycle order must still fire in
  // non-decreasing cycle order, with FIFO ties.
  Engine e;
  std::vector<std::pair<Cycle, int>> fired;
  int seq = 0;
  for (int i = 0; i < 1000; ++i) {
    const Cycle at = static_cast<Cycle>((i * 7919) % 101);
    e.ScheduleAt(at, [&fired, &e, s = seq++]() { fired.emplace_back(e.Now(), s); });
  }
  e.RunUntilIdle();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second) << "FIFO tie-break violated";
    }
  }
}

#if GLB_DCHECK_ENABLED
// Past-scheduling is a hot-path GLB_DCHECK: enforced in Debug/sanitizer
// builds (the asan preset runs this), compiled out of optimized builds.
TEST(EngineDeath, SchedulingIntoThePastAborts) {
  Engine e;
  e.ScheduleAt(10, [&]() {
    EXPECT_DEATH(e.ScheduleAt(5, []() {}), "scheduling into the past");
  });
  e.RunUntilIdle();
}
#endif

}  // namespace
}  // namespace glb::sim
