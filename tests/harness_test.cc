// Harness tests: metric extraction, table formatting, barrier factory.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "workloads/synthetic.h"

namespace glb::harness {
namespace {

TEST(Harness, MakeBarrierProducesRequestedKinds) {
  cmp::CmpSystem sys(cmp::CmpConfig::WithCores(4));
  EXPECT_STREQ(MakeBarrier(BarrierKind::kGL, sys)->name(), "GL");
  EXPECT_STREQ(MakeBarrier(BarrierKind::kCSW, sys)->name(), "CSW");
  EXPECT_STREQ(MakeBarrier(BarrierKind::kDSW, sys)->name(), "DSW");
}

TEST(Harness, RunExperimentCollectsMetrics) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<workloads::Synthetic>(10); },
      BarrierKind::kGL, cmp::CmpConfig::WithCores(4), 1'000'000);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.workload, "Synthetic");
  EXPECT_EQ(m.barrier, "GL");
  EXPECT_EQ(m.cores, 4u);
  EXPECT_EQ(m.barriers, 40u);
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(m.barrier_period, 0.0);
  EXPECT_EQ(m.validation, "");
  EXPECT_GT(m.host_events, 0u);
}

TEST(Harness, TimeoutIsReported) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<workloads::Synthetic>(100000); },
      BarrierKind::kGL, cmp::CmpConfig::WithCores(4), /*max_cycles=*/100);
  EXPECT_FALSE(m.completed);
  // The stall diagnostic names the cycle reached and the queued events.
  EXPECT_NE(m.stall.find("simulation stalled at cycle"), std::string::npos) << m.stall;
  EXPECT_NE(m.stall.find("pending events:"), std::string::npos) << m.stall;
  EXPECT_EQ(m.validation, m.stall);
}

TEST(Harness, TableAlignsAndPrints) {
  Table t({"A", "LongHeader", "C"});
  t.AddRow({"x", "1", "22"});
  t.AddRow({"yyyy", "2", "3"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("LongHeader"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Harness, TableDeathOnRaggedRow) {
  Table t({"A", "B"});
  EXPECT_DEATH(t.AddRow({"only one"}), "cells");
}

TEST(Harness, NumberFormatting) {
  EXPECT_EQ(Table::Num(1.234, 2), "1.23");
  EXPECT_EQ(Table::Num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::Pct(0.683), "68.3%");
}

TEST(Harness, BreakdownTableNormalizesToBaseline) {
  std::vector<RunMetrics> runs(2);
  runs[0].workload = "W";
  runs[0].barrier = "DSW";
  runs[0].cycles = 1000;
  runs[0].breakdown[core::TimeCat::kBusy] = 500;
  runs[0].breakdown[core::TimeCat::kBarrier] = 500;
  runs[1].workload = "W";
  runs[1].barrier = "GL";
  runs[1].cycles = 600;
  runs[1].breakdown[core::TimeCat::kBusy] = 550;
  runs[1].breakdown[core::TimeCat::kBarrier] = 50;
  std::ostringstream os;
  PrintBreakdownTable(os, runs, "DSW");
  const std::string s = os.str();
  EXPECT_NE(s.find("1.00"), std::string::npos) << "baseline normalizes to 1.0";
  EXPECT_NE(s.find("0.60"), std::string::npos) << "GL run at 0.6 of baseline";
}

TEST(Harness, TrafficTableNormalizesToBaseline) {
  std::vector<RunMetrics> runs(2);
  runs[0].workload = "W";
  runs[0].barrier = "DSW";
  runs[0].msgs_request = 50;
  runs[0].msgs_reply = 30;
  runs[0].msgs_coherence = 20;
  runs[1].workload = "W";
  runs[1].barrier = "GL";
  runs[1].msgs_request = 10;
  runs[1].msgs_reply = 10;
  runs[1].msgs_coherence = 5;
  std::ostringstream os;
  PrintTrafficTable(os, runs, "DSW");
  const std::string s = os.str();
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos) << "GL at 25/100 of baseline";
}

}  // namespace
}  // namespace glb::harness
