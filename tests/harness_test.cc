// Harness tests: metric extraction, table formatting, barrier factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "workloads/synthetic.h"

namespace glb::harness {
namespace {

TEST(Harness, MakeBarrierProducesRequestedKinds) {
  cmp::CmpSystem sys(cmp::CmpConfig::WithCores(4));
  EXPECT_STREQ(MakeBarrier(BarrierKind::kGL, sys)->name(), "GL");
  EXPECT_STREQ(MakeBarrier(BarrierKind::kCSW, sys)->name(), "CSW");
  EXPECT_STREQ(MakeBarrier(BarrierKind::kDSW, sys)->name(), "DSW");
}

TEST(Harness, RunExperimentCollectsMetrics) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<workloads::Synthetic>(10); },
      BarrierKind::kGL, cmp::CmpConfig::WithCores(4), 1'000'000);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.workload, "Synthetic");
  EXPECT_EQ(m.barrier, "GL");
  EXPECT_EQ(m.cores, 4u);
  EXPECT_EQ(m.barriers, 40u);
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(m.barrier_period, 0.0);
  EXPECT_EQ(m.validation, "");
  EXPECT_GT(m.host_events, 0u);
}

TEST(Harness, TimeoutIsReported) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<workloads::Synthetic>(100000); },
      BarrierKind::kGL, cmp::CmpConfig::WithCores(4), /*max_cycles=*/100);
  EXPECT_FALSE(m.completed);
  // The stall diagnostic names the cycle reached and the queued events.
  EXPECT_NE(m.stall.find("simulation stalled at cycle"), std::string::npos) << m.stall;
  EXPECT_NE(m.stall.find("pending events:"), std::string::npos) << m.stall;
  EXPECT_EQ(m.validation, m.stall);
}

TEST(Harness, TableAlignsAndPrints) {
  Table t({"A", "LongHeader", "C"});
  t.AddRow({"x", "1", "22"});
  t.AddRow({"yyyy", "2", "3"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("LongHeader"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Harness, TableDeathOnRaggedRow) {
  Table t({"A", "B"});
  EXPECT_DEATH(t.AddRow({"only one"}), "cells");
}

TEST(Harness, NumberFormatting) {
  EXPECT_EQ(Table::Num(1.234, 2), "1.23");
  EXPECT_EQ(Table::Num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::Pct(0.683), "68.3%");
}

TEST(Harness, NumEdgeCases) {
  EXPECT_EQ(Table::Num(0.0), "0.00");
  EXPECT_EQ(Table::Num(-1.5, 1), "-1.5");
  EXPECT_EQ(Table::Num(2.5, 0), "2");    // round-half-to-even at precision 0
  EXPECT_EQ(Table::Num(3.5, 0), "4");
  EXPECT_EQ(Table::Num(1.005, 4), "1.0050");
  EXPECT_EQ(Table::Num(1e9, 0), "1000000000");
  EXPECT_EQ(Table::Num(std::uint64_t{0}), "0");
  EXPECT_EQ(Table::Num(~std::uint64_t{0}), "18446744073709551615");
}

TEST(Harness, PctEdgeCases) {
  EXPECT_EQ(Table::Pct(0.0), "0.0%");
  EXPECT_EQ(Table::Pct(1.0), "100.0%");
  EXPECT_EQ(Table::Pct(1.5), "150.0%");    // over-unity fractions allowed
  EXPECT_EQ(Table::Pct(-0.25), "-25.0%");  // regressions render negative
  EXPECT_EQ(Table::Pct(0.12345, 3), "12.345%");
  EXPECT_EQ(Table::Pct(0.005, 0), "0%");   // rounds half to even
}

TEST(Harness, TableWithNoRowsStillPrintsHeaderAndRule) {
  Table t({"Only", "Headers"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Only"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);  // header + rule only
}

TEST(Harness, TableColumnsAlignOnWidestCell) {
  Table t({"A", "B"});
  t.AddRow({"wide-cell-value", "1"});
  t.AddRow({"x", "2"});
  std::ostringstream os;
  t.Print(os);
  std::istringstream is(os.str());
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  // Column B starts at the same offset in every row.
  const auto col = row1.find("1");
  ASSERT_NE(col, std::string::npos);
  EXPECT_EQ(row2.find("2"), col);
  EXPECT_GE(rule.size(), std::string("wide-cell-value").size());
}

TEST(Harness, TrafficTableZeroBaselineDoesNotDivide) {
  // A baseline with zero messages must not produce NaN/inf cells.
  std::vector<RunMetrics> runs(2);
  runs[0].workload = "W";
  runs[0].barrier = "DSW";
  runs[1].workload = "W";
  runs[1].barrier = "GL";
  runs[1].msgs_request = 10;
  std::ostringstream os;
  PrintTrafficTable(os, runs, "DSW");
  const std::string s = os.str();
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(Harness, BreakdownTableNormalizesToBaseline) {
  std::vector<RunMetrics> runs(2);
  runs[0].workload = "W";
  runs[0].barrier = "DSW";
  runs[0].cycles = 1000;
  runs[0].breakdown[core::TimeCat::kBusy] = 500;
  runs[0].breakdown[core::TimeCat::kBarrier] = 500;
  runs[1].workload = "W";
  runs[1].barrier = "GL";
  runs[1].cycles = 600;
  runs[1].breakdown[core::TimeCat::kBusy] = 550;
  runs[1].breakdown[core::TimeCat::kBarrier] = 50;
  std::ostringstream os;
  PrintBreakdownTable(os, runs, "DSW");
  const std::string s = os.str();
  EXPECT_NE(s.find("1.00"), std::string::npos) << "baseline normalizes to 1.0";
  EXPECT_NE(s.find("0.60"), std::string::npos) << "GL run at 0.6 of baseline";
}

TEST(Harness, TrafficTableNormalizesToBaseline) {
  std::vector<RunMetrics> runs(2);
  runs[0].workload = "W";
  runs[0].barrier = "DSW";
  runs[0].msgs_request = 50;
  runs[0].msgs_reply = 30;
  runs[0].msgs_coherence = 20;
  runs[1].workload = "W";
  runs[1].barrier = "GL";
  runs[1].msgs_request = 10;
  runs[1].msgs_reply = 10;
  runs[1].msgs_coherence = 5;
  std::ostringstream os;
  PrintTrafficTable(os, runs, "DSW");
  const std::string s = os.str();
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos) << "GL at 25/100 of baseline";
}

}  // namespace
}  // namespace glb::harness
