// Interval-sampler contract tests. The load-bearing one is the
// off-path assertion: a DISABLED sampler (interval 0, the default for
// every figure bench) must never allocate and never schedule an engine
// event — that, plus the manifest gating pinned in manifest_test.cc, is
// what keeps `--sample-interval 0` runs byte-identical to builds that
// predate the sampler. Global operator new is replaced in this binary
// to count allocations (same pattern as engine_alloc_test.cc).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/engine.h"
#include "trace/sampler.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace glb::trace {
namespace {

/// A tiny deterministic workload: `counter` is bumped by an event chain
/// every cycle until `until`.
void DriveCounter(sim::Engine& e, Counter* c, Cycle until) {
  if (e.Now() >= until) return;
  c->Inc(1 + e.Now() % 3);
  e.ScheduleIn(1, [&e, c, until]() { DriveCounter(e, c, until); });
}

TEST(SamplerOffPath, DisabledSamplerNeverAllocatesNorSchedules) {
  sim::Engine e;
  StatSet stats;
  Counter* c = stats.GetCounter("test.counter");

  Sampler sampler(e, stats, /*interval=*/0);
  ASSERT_FALSE(sampler.enabled());

  const std::uint64_t allocs_before = g_allocs.load();
  // Everything a driver does with a sampler, on the disabled path.
  sampler.AddGauge("gauge.one", [&e]() { return e.Now(); });
  sampler.Start();
  e.ScheduleIn(0, [&e, c]() { DriveCounter(e, c, 64); });
  e.RunUntilIdle();
  sampler.FinalSample();
  const std::uint64_t sampler_path_allocs = g_allocs.load() - allocs_before;

  EXPECT_TRUE(sampler.samples().empty());
  // The DriveCounter chain itself allocates nothing after the engine's
  // free list warms up, so every allocation on this path would be the
  // sampler's. Zero means the off path is truly free.
  EXPECT_EQ(sampler_path_allocs, 0u)
      << "disabled sampler allocated " << sampler_path_allocs << " times";

  // And it must not have scheduled anything: a second identical engine
  // run without a sampler processes the same number of events.
  sim::Engine e2;
  StatSet stats2;
  Counter* c2 = stats2.GetCounter("test.counter");
  e2.ScheduleIn(0, [&e2, c2]() { DriveCounter(e2, c2, 64); });
  e2.RunUntilIdle();
  EXPECT_EQ(e.events_processed(), e2.events_processed());
  EXPECT_EQ(c->value(), c2->value());
}

TEST(Sampler, SamplesChangedCountersAtIntervalBoundaries) {
  sim::Engine e;
  StatSet stats;
  Counter* c = stats.GetCounter("test.counter");

  Sampler sampler(e, stats, /*interval=*/16);
  sampler.Start();
  e.ScheduleIn(0, [&e, c]() { DriveCounter(e, c, 40); });
  e.RunUntilIdle();
  sampler.FinalSample();

  // Ticks at 16 and 32 fire while the chain runs; the chain dies at 40,
  // so the last tick (48) captures the 33..40 tail, sees an idle engine,
  // and stops the chain. FinalSample then has nothing new to add.
  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[0].t, 16u);
  EXPECT_EQ(sampler.samples()[1].t, 32u);
  EXPECT_EQ(sampler.samples()[2].t, 48u);
  for (const Sample& s : sampler.samples()) {
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_EQ(s.values[0].first, "test.counter");
  }
  // Absolute values, strictly increasing, ending at the final total.
  EXPECT_LT(sampler.samples()[0].values[0].second,
            sampler.samples()[1].values[0].second);
  EXPECT_EQ(sampler.samples()[2].values[0].second, c->value());
}

TEST(Sampler, UnchangedSeriesAreOmittedAndZeroNeverAppears) {
  sim::Engine e;
  StatSet stats;
  Counter* active = stats.GetCounter("active");
  stats.GetCounter("idle.zero");  // registered, never bumped
  Counter* early = stats.GetCounter("early.burst");
  early->Inc(5);  // changes before the first tick, then never again

  Sampler sampler(e, stats, /*interval=*/10);
  std::uint64_t gauge_v = 100;
  sampler.AddGauge("gauge.step", [&gauge_v]() { return gauge_v; });
  sampler.Start();
  e.ScheduleIn(0, [&e, active]() { DriveCounter(e, active, 25); });
  e.ScheduleIn(15, [&gauge_v]() { gauge_v = 200; });
  e.RunUntilIdle();
  sampler.FinalSample();

  ASSERT_EQ(sampler.samples().size(), 3u);  // ticks at t=10, t=20, t=30
  const auto has = [](const Sample& s, const std::string& name) {
    for (const auto& [n, v] : s.values) {
      if (n == name) return true;
    }
    return false;
  };
  // First tick: early.burst appears once (first nonzero), the
  // never-nonzero counter never appears at all.
  EXPECT_TRUE(has(sampler.samples()[0], "early.burst"));
  EXPECT_TRUE(has(sampler.samples()[0], "gauge.step"));
  for (const Sample& s : sampler.samples()) {
    EXPECT_FALSE(has(s, "idle.zero"));
  }
  // Later samples omit series that stopped changing.
  EXPECT_FALSE(has(sampler.samples()[1], "early.burst"));
  EXPECT_TRUE(has(sampler.samples()[1], "gauge.step"));  // 100 -> 200
  EXPECT_FALSE(has(sampler.samples()[2], "gauge.step"));
  EXPECT_TRUE(has(sampler.samples()[2], "active"));
}

TEST(Sampler, SeriesAreDeterministicAcrossRuns) {
  const auto run = []() {
    sim::Engine e;
    StatSet stats;
    Counter* c = stats.GetCounter("test.counter");
    Sampler sampler(e, stats, /*interval=*/8);
    sampler.AddGauge("gauge.now", [&e]() { return e.Now(); });
    sampler.Start();
    e.ScheduleIn(0, [&e, c]() { DriveCounter(e, c, 50); });
    e.RunUntilIdle();
    sampler.FinalSample();
    std::vector<std::string> flat;
    for (const Sample& s : sampler.samples()) {
      for (const auto& [n, v] : s.values) {
        flat.push_back(std::to_string(s.t) + ":" + n + "=" + std::to_string(v));
      }
    }
    return flat;
  };
  const std::vector<std::string> a = run();
  const std::vector<std::string> b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Sampler, TickChainEndsWhenTheEngineIdles) {
  // The tick must not reschedule itself once it is the only pending
  // event, or RunUntilIdle would never return. An idle engine with an
  // enabled sampler processes exactly the scheduled ticks and stops.
  sim::Engine e;
  StatSet stats;
  Sampler sampler(e, stats, /*interval=*/4);
  sampler.Start();
  e.ScheduleIn(10, []() {});  // lone event; ticks at 4 and 8 precede it
  e.RunUntilIdle();
  // Ticks: 4, 8 (sees the t=10 event pending), 12 (sees nothing, stops),
  // so the run ends at the last tick's cycle with a drained queue.
  EXPECT_EQ(e.Now(), 12u);
  EXPECT_LE(e.events_processed(), 4u);
  EXPECT_EQ(e.pending_events(), 0u);
}

}  // namespace
}  // namespace glb::trace
