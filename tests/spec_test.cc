// Name-addressed experiment API tests: barrier-name round-trips, the
// workload registry, weak-scaling rules (Scale::ForCores and the
// problem-size flags), the ExperimentSpec manifest echo, and the
// per-level hierarchical energy invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "harness/manifest.h"
#include "harness/spec.h"
#include "power/energy_model.h"
#include "sync/tuned_barrier.h"
#include "workloads/synthetic.h"

namespace glb::harness {
namespace {

TEST(BarrierNames, RoundTripEveryKind) {
  ASSERT_EQ(AllBarrierKinds().size(), 12u);
  for (BarrierKind k : AllBarrierKinds()) {
    const std::string canon = ToString(k);
    ASSERT_TRUE(BarrierKindFromName(canon).has_value()) << canon;
    EXPECT_EQ(*BarrierKindFromName(canon), k) << canon;
    std::string lower = canon;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    ASSERT_TRUE(BarrierKindFromName(lower).has_value()) << lower;
    EXPECT_EQ(*BarrierKindFromName(lower), k) << lower;
  }
}

TEST(BarrierNames, HierAliasAndUnknowns) {
  EXPECT_EQ(BarrierKindFromName("gl-hier"), BarrierKind::kGLH);
  EXPECT_FALSE(BarrierKindFromName("").has_value());
  EXPECT_FALSE(BarrierKindFromName("GLX").has_value());
  EXPECT_FALSE(BarrierKindFromName("Gl").has_value());  // canon or lower only
}

TEST(BarrierNames, ZooKindsResolveWithAliases) {
  EXPECT_EQ(BarrierKindFromName("RDBL"), BarrierKind::kRDBL);
  EXPECT_EQ(BarrierKindFromName("bruck"), BarrierKind::kBRUCK);
  EXPECT_EQ(BarrierKindFromName("TOURN"), BarrierKind::kTOURN);
  EXPECT_EQ(BarrierKindFromName("tournament"), BarrierKind::kTOURN);
  EXPECT_EQ(BarrierKindFromName("RING"), BarrierKind::kRING);
  EXPECT_EQ(BarrierKindFromName("GALOIS"), BarrierKind::kGALOIS);
  EXPECT_EQ(BarrierKindFromName("galois-fast"), BarrierKind::kGALOIS);
  EXPECT_EQ(BarrierKindFromName("tuned"), BarrierKind::kTUNED);
  // Aliases are exact, not prefixes.
  EXPECT_FALSE(BarrierKindFromName("galois-fas").has_value());
  EXPECT_FALSE(BarrierKindFromName("tournamen").has_value());
}

TEST(BarrierNamesDeathTest, UnknownNameExitsWithStatus2) {
  EXPECT_EXIT(BarrierKindFromNameOrExit("BOGUS"),
              ::testing::ExitedWithCode(2), "unknown barrier 'BOGUS'");
}

TEST(WorkloadRegistry, BuiltinsResolveBothWays) {
  const std::vector<std::string> builtins = {
      "Synthetic", "Kernel2", "Kernel3", "Kernel6",
      "EM3D",      "OCEAN",   "UNSTRUCTURED"};
  const Scale scale;
  for (const std::string& name : builtins) {
    EXPECT_TRUE(KnownWorkload(name)) << name;
    auto wl = MakeWorkload(name, scale);
    ASSERT_NE(wl, nullptr) << name;
    // The registry name IS the workload's self-reported name.
    EXPECT_EQ(wl->name(), name);
    auto factory = MakeWorkloadFactory(name, scale);
    ASSERT_NE(factory, nullptr) << name;
    EXPECT_EQ(factory()->name(), name);
  }
  const auto names = WorkloadNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : builtins) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  }
}

TEST(WorkloadRegistry, UnknownNamesRejected) {
  EXPECT_FALSE(KnownWorkload("NoSuchWorkload"));
  EXPECT_EQ(MakeWorkload("NoSuchWorkload", Scale{}), nullptr);
  EXPECT_EQ(MakeWorkloadFactory("NoSuchWorkload", Scale{}), nullptr);
}

TEST(WorkloadRegistryDeathTest, MakeOrExitExitsWithStatus2) {
  EXPECT_EXIT(MakeWorkloadOrExit("NoSuchWorkload", Scale{}),
              ::testing::ExitedWithCode(2), "unknown workload 'NoSuchWorkload'");
}

TEST(WorkloadRegistry, RegisterAddsAndReplaces) {
  RegisterWorkload("SpecTestWL", [](const Scale& s) {
    return std::make_unique<workloads::Synthetic>(s.synthetic_iters);
  });
  EXPECT_TRUE(KnownWorkload("SpecTestWL"));
  Scale s;
  s.synthetic_iters = 7;
  auto wl = MakeWorkload("SpecTestWL", s);
  ASSERT_NE(wl, nullptr);
  EXPECT_STREQ(wl->name(), "Synthetic");
}

TEST(ScaleForCores, IdentityAtOrBelow32) {
  const Scale base;
  for (std::uint32_t cores : {1u, 4u, 16u, 32u}) {
    const Scale s = Scale::ForCores(cores);
    EXPECT_EQ(s.ocean_grid, base.ocean_grid);
    EXPECT_EQ(s.em3d_nodes, base.em3d_nodes);
    EXPECT_EQ(s.unstr_nodes, base.unstr_nodes);
    EXPECT_EQ(s.unstr_edges, base.unstr_edges);
    EXPECT_EQ(s.k2_n, base.k2_n);
    EXPECT_EQ(s.ocean_iters, base.ocean_iters);
  }
}

TEST(ScaleForCores, SizesKeepThePerCoreShare) {
  for (std::uint32_t cores : {64u, 256u, 1024u}) {
    const Scale s = Scale::ForCores(cores);
    // Two interior OCEAN rows per core; kernel vectors and graph nodes
    // linear in the core count (the 32-core defaults' share).
    EXPECT_EQ(s.ocean_grid, 2 * cores + 2) << cores;
    EXPECT_EQ(s.em3d_nodes, 75 * cores) << cores;
    EXPECT_EQ(s.unstr_nodes, 64 * cores) << cores;
    EXPECT_EQ(s.unstr_edges, 256 * cores) << cores;
    EXPECT_EQ(s.k2_n, 32 * cores) << cores;
    EXPECT_EQ(s.k3_n, 32 * cores) << cores;
    EXPECT_EQ(s.k6_n, 8 * cores) << cores;
    // Iterations shrink but never below the floors that keep the
    // barrier structure intact.
    EXPECT_GE(s.ocean_iters, 2u) << cores;
    EXPECT_GE(s.em3d_steps, 3u) << cores;
    EXPECT_GE(s.unstr_steps, 1u) << cores;
    EXPECT_GE(s.k2_iters, 2u) << cores;
    EXPECT_GE(s.k3_iters, 4u) << cores;
    EXPECT_GE(s.synthetic_iters, 50u) << cores;
    EXPECT_LE(s.ocean_iters, Scale{}.ocean_iters);
  }
}

TEST(ScaleFlags, ProblemSizeFlagsOverride) {
  const char* argv[] = {"spec_test",      "--ocean-grid",  "100",
                        "--em3d-nodes",   "500",           "--unstr-nodes",
                        "300",            "--unstr-edges", "900",
                        "--k2-n",         "64",            "--k3-n",
                        "128",            "--k6-n",        "32",
                        "--ocean-iters",  "3"};
  Flags flags(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  const Scale s = Scale::FromFlags(flags);
  EXPECT_EQ(s.ocean_grid, 100u);
  EXPECT_EQ(s.em3d_nodes, 500u);
  EXPECT_EQ(s.unstr_nodes, 300u);
  EXPECT_EQ(s.unstr_edges, 900u);
  EXPECT_EQ(s.k2_n, 64u);
  EXPECT_EQ(s.k3_n, 128u);
  EXPECT_EQ(s.k6_n, 32u);
  EXPECT_EQ(s.ocean_iters, 3u);
  // The weak-scaled overload: flags still win over the ForCores base.
  const Scale s256 = Scale::FromFlags(flags, 256);
  EXPECT_EQ(s256.ocean_grid, 100u);
  EXPECT_EQ(s256.k2_n, 64u);
  EXPECT_EQ(s256.em3d_steps, Scale::ForCores(256).em3d_steps);
}

TEST(ExperimentSpecTest, RunsByNameAndFactoryWins) {
  ExperimentSpec spec;
  spec.workload = "Synthetic";
  spec.scale.synthetic_iters = 5;
  spec.barrier = BarrierKind::kGL;
  spec.cfg = cmp::CmpConfig::WithCores(4);
  const RunMetrics by_name = RunExperiment(spec);
  EXPECT_TRUE(by_name.completed);
  EXPECT_TRUE(by_name.validation.empty());
  EXPECT_EQ(by_name.workload, "Synthetic");
  EXPECT_EQ(by_name.barrier, "GL");
  EXPECT_GT(by_name.barriers, 0u);

  // The factory escape hatch wins over the registry name.
  spec.workload = "NoSuchWorkload";
  spec.factory = [] { return std::make_unique<workloads::Synthetic>(5); };
  const RunMetrics by_factory = RunExperiment(spec);
  EXPECT_TRUE(by_factory.completed);
  EXPECT_EQ(by_factory.cycles, by_name.cycles);
}

TEST(ExperimentSpecTest, ManifestEchoesTheSpec) {
  ExperimentSpec spec;
  spec.workload = "OCEAN";
  spec.scale = Scale::ForCores(256);
  spec.barrier = BarrierKind::kGLH;
  spec.cfg = cmp::CmpConfig::WithCores(256);
  spec.max_cycles = 123456;

  RunMetrics m;
  StatSet stats;
  std::ostringstream os;
  ManifestOptions opts;
  opts.tool = "spec_test";
  opts.experiment = &spec;
  WriteRunManifest(os, m, spec.cfg, stats, opts);

  std::string err;
  const auto doc = json::Parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* exp = doc->Find("experiment");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(exp->Find("workload")->str_v, "OCEAN");
  EXPECT_EQ(exp->Find("barrier")->str_v, "GLH");
  EXPECT_EQ(exp->NumberOr("max_cycles", 0.0), 123456.0);
  const json::Value* scale = exp->Find("scale");
  ASSERT_NE(scale, nullptr);
  EXPECT_EQ(scale->NumberOr("ocean_grid", 0.0), 514.0);
  EXPECT_EQ(scale->NumberOr("em3d_nodes", 0.0), 19200.0);
  EXPECT_EQ(scale->NumberOr("unstr_edges", 0.0), 65536.0);

  // Without an experiment pointer the manifest omits the block (and
  // stays byte-identical to pre-spec builds).
  std::ostringstream plain;
  opts.experiment = nullptr;
  WriteRunManifest(plain, m, spec.cfg, stats, opts);
  const auto doc2 = json::Parse(plain.str(), &err);
  ASSERT_TRUE(doc2.has_value()) << err;
  EXPECT_EQ(doc2->Find("experiment"), nullptr);
}

// The tuned meta-barrier's decision is echoed through RunMetrics into
// the glb.run manifest, and the echoed name matches the table entry for
// the measured period (TunedChoiceName is the same function the barrier
// consults).
TEST(ExperimentSpecTest, TunedRunEchoesChoiceIntoManifest) {
  ExperimentSpec spec;
  spec.workload = "Synthetic";
  spec.scale.synthetic_iters = 20;
  spec.barrier = BarrierKind::kTUNED;
  spec.cfg = cmp::CmpConfig::WithCores(16);
  const RunMetrics m = RunExperiment(spec);
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.validation.empty()) << m.validation;
  EXPECT_EQ(m.barrier, "TUNED");
  // Synthetic runs a loop of four consecutive barriers per iteration.
  EXPECT_EQ(m.barriers, 80u) << "delegation must not double-count episodes";
  ASSERT_FALSE(m.tuned_choice.empty());
  EXPECT_EQ(m.tuned_warmup_episodes, 4u);
  EXPECT_GT(m.tuned_measured_period, 0u);
  EXPECT_EQ(m.tuned_choice,
            sync::TunedChoiceName(
                16, static_cast<double>(m.tuned_measured_period)));

  StatSet stats;
  std::ostringstream os;
  ManifestOptions opts;
  opts.tool = "spec_test";
  WriteRunManifest(os, m, spec.cfg, stats, opts);
  std::string err;
  const auto doc = json::Parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* run = doc->Find("run");
  ASSERT_NE(run, nullptr);
  const json::Value* tuned = run->Find("tuned");
  ASSERT_NE(tuned, nullptr);
  EXPECT_EQ(tuned->Find("choice")->str_v, m.tuned_choice);
  EXPECT_EQ(tuned->NumberOr("warmup_episodes", 0.0), 4.0);
  EXPECT_GT(tuned->NumberOr("measured_period", 0.0), 0.0);

  // Non-tuned runs must not grow the block (pre-existing manifests stay
  // byte-identical).
  RunMetrics plain;
  std::ostringstream os2;
  WriteRunManifest(os2, plain, spec.cfg, stats, opts);
  const auto doc2 = json::Parse(os2.str(), &err);
  ASSERT_TRUE(doc2.has_value()) << err;
  ASSERT_NE(doc2->Find("run"), nullptr);
  EXPECT_EQ(doc2->Find("run")->Find("tuned"), nullptr);
}

TEST(HierEnergy, PerLevelTermsSumAndDominateFlatEquivalent) {
  auto cfg = cmp::CmpConfig::WithCores(64);
  cfg.hier.enabled = true;
  cmp::CmpSystem sys(cfg);
  workloads::Synthetic wl(20);
  wl.Init(sys);
  auto barrier = MakeBarrier(BarrierKind::kGLH, sys);
  ASSERT_TRUE(sys.RunPrograms(
      [&](core::Core& c, CoreId id) { return wl.Body(c, id, *barrier); }));
  ASSERT_NE(sys.hier(), nullptr);

  const power::HierEnergyReport r = power::EstimateHier(sys.stats(), *sys.hier());
  ASSERT_EQ(r.levels.size(), sys.hier()->num_levels());
  ASSERT_GE(r.levels.size(), 2u);  // 8x8 needs at least two levels
  double sum = 0;
  for (const power::HierEnergyLevel& lvl : r.levels) {
    sum += lvl.total_pj();
    EXPECT_GT(lvl.wires.signals, 0u) << lvl.wires.level;
    if (lvl.wires.level == 0) {
      EXPECT_EQ(lvl.wires.span_tiles, 1u);
      EXPECT_EQ(lvl.wires.handoffs, 0u);
    } else {
      EXPECT_GT(lvl.wires.span_tiles, 1u);
      EXPECT_GT(lvl.wires.handoffs, 0u);
      EXPECT_GT(lvl.handoff_pj, 0.0);
    }
  }
  // The per-level terms sum exactly to the G-line component, and the
  // hierarchy never prices below the flat-network equivalent.
  EXPECT_NEAR(sum, r.base.gline_pj, 1e-6 * sum);
  EXPECT_GT(r.base.gline_pj, 0.0);
  EXPECT_GE(r.base.gline_pj, r.flat_equiv_pj);
  EXPECT_GT(r.flat_equiv_pj, 0.0);
}

// Weak-scaling sanity: each application runs to completion and
// validates on the hierarchical network at 256 cores with the
// ForCores problem sizes (iterations dialed down to keep the test
// host-seconds; the sizes are the point).
TEST(WeakScaling, ApplicationsValidateAt256CoresOnHier) {
  Scale scale = Scale::ForCores(256);
  scale.ocean_iters = 1;
  scale.em3d_steps = 1;
  scale.unstr_steps = 1;
  for (const char* name : {"EM3D", "OCEAN", "UNSTRUCTURED"}) {
    ExperimentSpec spec;
    spec.workload = name;
    spec.scale = scale;
    spec.barrier = BarrierKind::kGLH;
    spec.cfg = cmp::CmpConfig::WithCores(256);
    const RunMetrics m = RunExperiment(spec);
    EXPECT_TRUE(m.completed) << name << ": " << m.stall;
    EXPECT_EQ(m.validation, "") << name;
    EXPECT_EQ(m.cores, 256u) << name;
    EXPECT_GT(m.barriers, 0u) << name;
  }
}

}  // namespace
}  // namespace glb::harness
