// Trace subsystem tests: the disabled path must not allocate, the
// emitted file must be structurally valid Chrome trace-event JSON, and
// the instrumentation must record the paper's barrier timing (a 4-cycle
// G-line combine phase at 32 cores) without perturbing the simulation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "cmp/cmp_system.h"
#include "common/json.h"
#include "harness/experiment.h"
#include "trace/trace.h"
#include "workloads/livermore.h"
#include "workloads/synthetic.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Linking these replacements into the test
// binary lets DisabledPathDoesNotAllocate assert the zero-cost claim
// the trace header makes.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// The replacements pair malloc with free, which is correct for
// replaced global new/delete but -Wmismatched-new-delete cannot prove.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too (libstdc++'s temporary
// buffers use them); otherwise ASan sees our malloc-backed delete
// freeing its own interceptor's new and reports a mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace glb {
namespace {

TEST(Trace, DisabledPathDoesNotAllocate) {
  ASSERT_FALSE(trace::Active());
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    GLB_TRACE_EVENT(trace::Sink().Instant("gl/ctx0", "retry", 42));
    GLB_TRACE_EVENT(trace::Sink().Complete(
        "core 0/l1", "GetS", 0, 5,
        trace::Args().Add("line", std::uint64_t{0x40}).json()));
    if (trace::Active()) {
      trace::Sink().CounterEvent("noc", "inflight", "packets", 0, 1);
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(Trace, ArgsBuildsJsonObjects) {
  EXPECT_EQ(trace::Args().json(), "");
  EXPECT_EQ(trace::Args().Add("n", std::uint32_t{32}).Add("ok", true).json(),
            R"({"n":32,"ok":true})");
  EXPECT_EQ(trace::Args().Add("s", "a\"b").json(), R"({"s":"a\"b"})");
}

// Writes the sink and parses the result back.
json::Value WriteAndParse(const trace::TraceSink& sink) {
  std::ostringstream os;
  sink.Write(os);
  std::string err;
  auto v = json::Parse(os.str(), &err);
  EXPECT_TRUE(v.has_value()) << err;
  return v.value_or(json::Value{});
}

TEST(Trace, SinkEmitsValidTraceEventJson) {
  trace::TraceSink sink;
  sink.Complete("core 0/timeline", "busy", 10, 20);
  sink.Instant("gl/ctx0", "BarrierTimeout", 15,
               trace::Args().Add("arrived", std::uint32_t{3}).json());
  const auto id = sink.NextId();
  sink.AsyncBegin("noc/packets", "GetS 0->4", id, 12);
  sink.AsyncEnd("noc/packets", "GetS 0->4", id, 19);
  sink.CounterEvent("noc", "link 0E", "queued", 13, 2);
  EXPECT_EQ(sink.num_events(), 5u);

  const json::Value doc = WriteAndParse(sink);
  const json::Value* evs = doc.Find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->IsArray());

  int metadata = 0, spans = 0, instants = 0, asyncs = 0, counters = 0;
  for (const json::Value& e : evs->arr) {
    const std::string ph = e.StringOr("ph", "");
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    ASSERT_NE(e.Find("ts"), nullptr);
    if (ph == "M") {
      ++metadata;
    } else if (ph == "X") {
      ++spans;
      EXPECT_DOUBLE_EQ(e.NumberOr("dur", -1.0), 10.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.StringOr("s", ""), "t");
      EXPECT_DOUBLE_EQ(e.Find("args")->NumberOr("arrived", 0.0), 3.0);
    } else if (ph == "b" || ph == "e") {
      ++asyncs;
      EXPECT_EQ(e.StringOr("cat", ""), "async");
      EXPECT_FALSE(e.StringOr("id", "").empty());
    } else if (ph == "C") {
      ++counters;
      EXPECT_DOUBLE_EQ(e.Find("args")->NumberOr("queued", 0.0), 2.0);
    }
  }
  // 4 tracks -> 4 thread_name entries + one process_name per process.
  EXPECT_GE(metadata, 4);
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(asyncs, 2);
  EXPECT_EQ(counters, 1);
}

TEST(Trace, TracksSplitIntoProcessAndThread) {
  trace::TraceSink sink;
  sink.Instant("core 0/l1", "x", 0);
  sink.Instant("core 0/timeline", "y", 1);
  sink.Instant("standalone", "z", 2);
  const json::Value doc = WriteAndParse(sink);

  std::vector<std::string> process_names, thread_names;
  for (const json::Value& e : doc.Find("traceEvents")->arr) {
    if (e.StringOr("ph", "") != "M") continue;
    const std::string which = e.StringOr("name", "");
    const std::string name = e.Find("args")->StringOr("name", "");
    if (which == "process_name") process_names.push_back(name);
    if (which == "thread_name") thread_names.push_back(name);
  }
  EXPECT_EQ(process_names, (std::vector<std::string>{"core 0", "standalone"}));
  EXPECT_EQ(thread_names, (std::vector<std::string>{"l1", "timeline", "standalone"}));
}

struct TracedRun {
  Cycle cycles = 0;
  json::Value doc;
  bool parsed = false;
};

// Runs `workload` under the GL barrier with tracing on, returning the
// parsed trace. `trace` toggles the sink so callers can compare timing.
template <typename WorkloadT, typename... A>
TracedRun RunTraced(std::uint32_t cores, bool trace_on, A&&... wl_args) {
  const std::string path =
      ::testing::TempDir() + "/glb_trace_test_" + std::to_string(cores) + ".json";
  TracedRun out;
  {
    trace::FileSession session(trace_on ? path : std::string{});
    cmp::CmpSystem sys(cmp::CmpConfig::WithCores(cores));
    WorkloadT wl(std::forward<A>(wl_args)...);
    wl.Init(sys);
    auto barrier = harness::MakeBarrier(harness::BarrierKind::kGL, sys);
    const sim::RunStatus status = sys.RunProgramsStatus(
        [&](core::Core& c, CoreId id) { return wl.Body(c, id, *barrier); },
        kCycleNever);
    EXPECT_TRUE(status.idle);
    out.cycles = sys.LastFinish();
  }
  if (trace_on) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    std::string err;
    auto v = json::Parse(ss.str(), &err);
    EXPECT_TRUE(v.has_value()) << err;
    if (v) {
      out.doc = std::move(*v);
      out.parsed = true;
    }
  }
  return out;
}

TEST(Trace, GlCombinePhaseIsFourCyclesAt32Cores) {
  const TracedRun run = RunTraced<workloads::Synthetic>(32, true, 10u);
  ASSERT_TRUE(run.parsed);
  const json::Value* evs = run.doc.Find("traceEvents");
  ASSERT_NE(evs, nullptr);

  // Pair async b/e by (name, id); "combine" covers last arrival ->
  // first release, which the G-line network does in exactly 4 cycles
  // on the paper's 4x8 mesh (Figure 2).
  std::map<std::pair<std::string, std::string>, double> begin_ts;
  int episodes = 0, combines = 0;
  for (const json::Value& e : evs->arr) {
    if (e.StringOr("cat", "") != "async") continue;
    const std::string name = e.StringOr("name", "");
    const auto key = std::make_pair(name, e.StringOr("id", ""));
    if (e.StringOr("ph", "") == "b") {
      begin_ts[key] = e.NumberOr("ts", -1.0);
      if (name == "episode") ++episodes;
    } else if (e.StringOr("ph", "") == "e") {
      ASSERT_TRUE(begin_ts.count(key)) << "unmatched async end: " << name;
      if (name == "combine") {
        ++combines;
        EXPECT_DOUBLE_EQ(e.NumberOr("ts", -1.0) - begin_ts[key], 4.0);
      }
    }
  }
  // Synthetic runs 4 barriers per iteration.
  EXPECT_GT(episodes, 0);
  EXPECT_EQ(combines, episodes);
}

TEST(Trace, CoherenceAndNocActivityIsTraced) {
  // Kernel2 on 4 cores produces real loads/stores, so L1 misses,
  // directory transactions and NoC packets must all show up.
  const TracedRun run = RunTraced<workloads::Kernel2>(4, true, 64u, 2u);
  ASSERT_TRUE(run.parsed);

  bool saw_l1 = false, saw_dir = false, saw_noc_packet = false, saw_link = false,
       saw_core_timeline = false;
  for (const json::Value& e : run.doc.Find("traceEvents")->arr) {
    if (e.StringOr("ph", "") != "M" || e.StringOr("name", "") != "thread_name") {
      continue;
    }
    const std::string t = e.Find("args")->StringOr("name", "");
    if (t == "l1") saw_l1 = true;
    if (t == "timeline") saw_core_timeline = true;
    if (t == "packets") saw_noc_packet = true;
    if (t.rfind("link ", 0) == 0) saw_link = true;
    if (t.rfind("bank ", 0) == 0) saw_dir = true;
  }
  EXPECT_TRUE(saw_l1);
  EXPECT_TRUE(saw_dir);
  EXPECT_TRUE(saw_noc_packet);
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_core_timeline);

  bool saw_gets = false;
  for (const json::Value& e : run.doc.Find("traceEvents")->arr) {
    const std::string name = e.StringOr("name", "");
    if (name.rfind("GetS @0x", 0) == 0 || name.rfind("GetX @0x", 0) == 0) {
      saw_gets = true;
      break;
    }
  }
  EXPECT_TRUE(saw_gets);
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  const TracedRun off = RunTraced<workloads::Kernel2>(4, false, 64u, 2u);
  const TracedRun on = RunTraced<workloads::Kernel2>(4, true, 64u, 2u);
  EXPECT_EQ(off.cycles, on.cycles);
  ASSERT_FALSE(trace::Active());  // FileSession uninstalled on scope exit
}

}  // namespace
}  // namespace glb
