// Multi-tenant partition unit tests: Rect parsing, tenant admission
// (bounds / names / transmitter budgets), PartitionManager lifecycle
// (create / resize / teardown, overlap and duplicate rejection), the
// mid-episode busy guard, and run equivalence — a full-chip tenant must
// reproduce the legacy single-workload run exactly.
#include <gtest/gtest.h>

#include <string>

#include "cmp/cmp_system.h"
#include "cmp/partition.h"
#include "core/task.h"
#include "harness/experiment.h"
#include "harness/tenants.h"
#include "sync/barrier.h"
#include "workloads/synthetic.h"

namespace glb {
namespace {

using cmp::Rect;

TEST(Rect, ParseAndToStringRoundTrip) {
  Rect r;
  ASSERT_TRUE(Rect::Parse("4x4", &r));
  EXPECT_EQ(r, (Rect{0, 0, 4, 4}));
  EXPECT_EQ(r.ToString(), "4x4");

  ASSERT_TRUE(Rect::Parse("2x3@1,5", &r));
  EXPECT_EQ(r, (Rect{1, 5, 2, 3}));
  EXPECT_EQ(r.ToString(), "2x3@1,5");

  ASSERT_TRUE(Rect::Parse("1x1@0,0", &r));
  EXPECT_EQ(r.num_cores(), 1u);
  EXPECT_EQ(r.ToString(), "1x1");  // origin anchor is implicit
}

TEST(Rect, ParseRejectsMalformedSpecs) {
  const Rect sentinel{7, 7, 7, 7};
  for (const char* bad : {"", "4", "4x", "x4", "0x4", "4x0", "axb", "4x4@",
                          "4x4@1", "4x4@1,", "4x4@,2", "4x4@1,2,3", " 4x4",
                          "4x4 ", "4x-1", "-1x4"}) {
    Rect r = sentinel;
    EXPECT_FALSE(Rect::Parse(bad, &r)) << "accepted '" << bad << "'";
    EXPECT_EQ(r, sentinel) << "clobbered out for '" << bad << "'";
  }
}

TEST(Rect, OverlapsAndContains) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.Overlaps(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(a.Overlaps(Rect{2, 0, 2, 2}));  // edge-adjacent, no overlap
  EXPECT_FALSE(a.Overlaps(Rect{0, 2, 2, 2}));
  EXPECT_FALSE(a.Overlaps(Rect{0, 0, 0, 0}));  // empty never overlaps
  EXPECT_TRUE(a.Contains(1, 1));
  EXPECT_FALSE(a.Contains(2, 0));
}

TEST(Partition, ValidateTenantConfigEdgeCases) {
  const auto chip = cmp::CmpConfig::WithCores(64);  // 8x8

  cmp::TenantConfig ok;
  ok.name = "t0";
  ok.rect = {0, 0, 1, 1};
  EXPECT_EQ(cmp::ValidateTenantConfig(ok, chip), "");  // 1x1 is legal

  cmp::TenantConfig bad = ok;
  bad.name = "";
  EXPECT_NE(cmp::ValidateTenantConfig(bad, chip).find("non-empty"),
            std::string::npos);
  bad.name = "has space";
  EXPECT_NE(cmp::ValidateTenantConfig(bad, chip).find("[A-Za-z0-9_-]"),
            std::string::npos);

  bad = ok;
  bad.rect = {0, 0, 0, 4};
  EXPECT_NE(cmp::ValidateTenantConfig(bad, chip).find("non-empty"),
            std::string::npos);

  bad = ok;
  bad.rect = {4, 4, 5, 4};  // rows 4..8 spill off the 8x8 mesh
  EXPECT_NE(cmp::ValidateTenantConfig(bad, chip).find("exceeds the 8x8 mesh"),
            std::string::npos);

  bad = ok;
  bad.max_transmitters = 0;
  EXPECT_NE(cmp::ValidateTenantConfig(bad, chip).find("budget must be >= 1"),
            std::string::npos);

  // A flat-GL rect wider than budget+1 tiles is a validation error
  // steering the caller to the hierarchical network, never an abort.
  bad = ok;
  bad.rect = {0, 0, 4, 4};
  bad.max_transmitters = 2;
  const std::string why = cmp::ValidateTenantConfig(bad, chip);
  EXPECT_NE(why.find("use gl-hier"), std::string::npos) << why;

  // The same rect under the same budget is fine hierarchically (cluster
  // dimensions clamp to the budget) and at the flat default of six.
  bad.barrier = sync::BarrierKind::kGLH;
  EXPECT_EQ(cmp::ValidateTenantConfig(bad, chip), "");
  bad.barrier = sync::BarrierKind::kGL;
  bad.max_transmitters = 6;
  EXPECT_EQ(cmp::ValidateTenantConfig(bad, chip), "");
}

TEST(Partition, ManagerLifecycleAndRejections) {
  cmp::CmpSystem sys(cmp::CmpConfig::WithCores(64));  // 8x8
  cmp::PartitionManager pm(sys);

  cmp::TenantConfig a;
  a.name = "A";
  a.rect = {0, 0, 2, 2};
  std::string err;
  cmp::Tenant* ta = pm.Create(a, &err);
  ASSERT_NE(ta, nullptr) << err;
  EXPECT_EQ(pm.Find("A"), ta);
  EXPECT_EQ(ta->num_cores(), 4u);
  EXPECT_FALSE(ta->busy());

  // Overlap with a live tenant is refused with a pinpoint diagnostic.
  cmp::TenantConfig b = a;
  b.name = "B";
  b.rect = {1, 1, 2, 2};
  EXPECT_EQ(pm.Create(b, &err), nullptr);
  EXPECT_NE(err.find("overlaps live tenant 'A'"), std::string::npos) << err;

  // Duplicate names are refused even on disjoint rects.
  b.name = "A";
  b.rect = {4, 4, 2, 2};
  EXPECT_EQ(pm.Create(b, &err), nullptr);
  EXPECT_NE(err.find("duplicate tenant name 'A'"), std::string::npos) << err;

  b.name = "B";
  cmp::Tenant* tb = pm.Create(b, &err);
  ASSERT_NE(tb, nullptr) << err;

  // Resize may grow over free tiles (pointer and stats survive)...
  EXPECT_TRUE(pm.Resize("A", Rect{0, 0, 3, 3}, &err)) << err;
  EXPECT_EQ(pm.Find("A"), ta);
  EXPECT_EQ(ta->rect(), (Rect{0, 0, 3, 3}));
  // ...but not onto another tenant, and self-overlap of the old rect
  // does not count against the move.
  EXPECT_FALSE(pm.Resize("A", Rect{3, 3, 2, 2}, &err));
  EXPECT_NE(err.find("overlaps live tenant 'B'"), std::string::npos) << err;
  EXPECT_EQ(ta->rect(), (Rect{0, 0, 3, 3}));  // failed resize is a no-op

  EXPECT_FALSE(pm.Resize("missing", Rect{0, 0, 1, 1}, &err));
  EXPECT_NE(err.find("no tenant named 'missing'"), std::string::npos);

  EXPECT_TRUE(pm.Teardown("B", &err)) << err;
  EXPECT_EQ(pm.Find("B"), nullptr);
  EXPECT_FALSE(pm.Teardown("B", &err));
  EXPECT_NE(err.find("no tenant named 'B'"), std::string::npos);

  // B's tiles are free again.
  b.rect = {3, 3, 2, 2};
  EXPECT_NE(pm.Create(b, &err), nullptr) << err;
}

core::Task WaitOnce(core::Core& core, sync::Barrier& barrier) {
  co_await barrier.Wait(core);
}

core::Task ComputeThenWait(core::Core& core, sync::Barrier& barrier,
                           Cycle compute) {
  co_await core.Compute(compute);
  co_await barrier.Wait(core);
}

core::Task IdleTask() { co_return; }

// A tenant whose members are parked inside Wait is mid-episode: Resize
// and Teardown must refuse with a diagnostic, busy() must read true,
// and destroying the manager with the episode still open must not
// abort — the stalled run has to unwind cleanly.
TEST(Partition, MidEpisodeResizeAndTeardownAreRefused) {
  cmp::CmpSystem sys(cmp::CmpConfig::WithCores(16));  // 4x4
  cmp::PartitionManager pm(sys);

  cmp::TenantConfig cfg;
  cfg.name = "stuck";
  cfg.rect = {0, 0, 2, 2};
  std::string err;
  cmp::Tenant* t = pm.Create(cfg, &err);
  ASSERT_NE(t, nullptr) << err;

  // Rank 0 computes far past the cycle limit, so when the run stops the
  // other three members are parked inside Wait — the episode is open.
  const sim::RunStatus status = sys.RunProgramsStatus(
      [&](core::Core& core, CoreId id) -> core::Task {
        if (!t->Contains(id)) return IdleTask();
        if (t->RankOf(id) == 0) {
          return ComputeThenWait(core, t->barrier(), 100000);
        }
        return WaitOnce(core, t->barrier());
      },
      /*max_cycles=*/500);
  EXPECT_FALSE(status.idle);

  EXPECT_TRUE(t->busy());
  EXPECT_FALSE(pm.Resize("stuck", Rect{0, 0, 3, 3}, &err));
  EXPECT_NE(err.find("mid-episode"), std::string::npos) << err;
  EXPECT_NE(err.find("barrier-episode boundaries"), std::string::npos) << err;
  EXPECT_FALSE(pm.Teardown("stuck", &err));
  EXPECT_NE(err.find("mid-episode"), std::string::npos) << err;
  EXPECT_EQ(pm.Find("stuck"), t);  // still live, untouched
  // pm destruction with the open episode is the stalled-run unwind path.
}

// A tenant covering the whole chip is the legacy single-workload run by
// another name: same cycles, same barrier episodes, same validation.
TEST(Partition, FullChipTenantMatchesLegacyRun) {
  constexpr std::uint32_t kIters = 30;
  const auto cfg = cmp::CmpConfig::WithCores(16);

  cmp::CmpSystem legacy(cfg);
  workloads::Synthetic wl(kIters);
  wl.Init(legacy);
  auto barrier = harness::MakeBarrier(harness::BarrierKind::kGL, legacy);
  const sim::RunStatus status = legacy.RunProgramsStatus(
      [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); });
  const harness::RunMetrics m = harness::CollectMetrics(
      legacy, status, wl, harness::ToString(harness::BarrierKind::kGL));
  ASSERT_TRUE(m.completed);
  ASSERT_TRUE(m.validation.empty()) << m.validation;

  harness::RunSpec spec;
  spec.cfg = cfg;
  harness::Scale scale;
  scale.synthetic_iters = kIters;
  spec.tenants.push_back(harness::NamedTenant("whole", Rect{0, 0, 4, 4},
                                              "Synthetic", scale,
                                              harness::BarrierKind::kGL));
  ASSERT_EQ(harness::ValidateRunSpec(spec), "");
  const harness::MultiRunMetrics mm = harness::RunTenants(spec);

  EXPECT_TRUE(mm.run.completed);
  EXPECT_TRUE(mm.run.validation.empty()) << mm.run.validation;
  EXPECT_EQ(mm.run.cycles, m.cycles);
  ASSERT_EQ(mm.tenants.size(), 1u);
  EXPECT_EQ(mm.tenants[0].cores, 16u);
  // Synthetic runs four back-to-back barriers per iteration.
  EXPECT_EQ(mm.tenants[0].barriers, m.barriers);
  EXPECT_EQ(mm.tenants[0].barriers, std::uint64_t{4} * kIters);
  EXPECT_EQ(mm.tenants[0].waits, std::uint64_t{4} * kIters * 16);
}

// The degenerate 1x1 partition: a tenant of one core still completes,
// validates, and counts its (trivial) barrier episodes.
TEST(Partition, SingleTileTenantRuns) {
  harness::RunSpec spec;
  spec.cfg = cmp::CmpConfig::WithCores(16);
  harness::Scale scale;
  scale.synthetic_iters = 5;
  spec.tenants.push_back(harness::NamedTenant("solo", Rect{3, 3, 1, 1},
                                              "Synthetic", scale,
                                              harness::BarrierKind::kGL));
  ASSERT_EQ(harness::ValidateRunSpec(spec), "");
  const harness::MultiRunMetrics mm = harness::RunTenants(spec);
  EXPECT_TRUE(mm.run.completed);
  EXPECT_TRUE(mm.run.validation.empty()) << mm.run.validation;
  ASSERT_EQ(mm.tenants.size(), 1u);
  EXPECT_EQ(mm.tenants[0].cores, 1u);
  EXPECT_EQ(mm.tenants[0].barriers, 20u);  // 4 barriers x 5 iterations
}

// ValidateRunSpec catches spec-level problems admission alone cannot:
// pairwise overlap, duplicate names, unknown workloads, non-straggler
// tenant fault plans, and fast-forward incompatibility.
TEST(Partition, ValidateRunSpecRejections) {
  harness::RunSpec spec;
  spec.cfg = cmp::CmpConfig::WithCores(16);
  EXPECT_NE(harness::ValidateRunSpec(spec).find("at least one tenant"),
            std::string::npos);

  harness::Scale scale;
  scale.synthetic_iters = 2;
  spec.tenants.push_back(harness::NamedTenant(
      "a", Rect{0, 0, 2, 2}, "Synthetic", scale, harness::BarrierKind::kGL));
  spec.tenants.push_back(harness::NamedTenant(
      "b", Rect{1, 1, 2, 2}, "Synthetic", scale, harness::BarrierKind::kGL));
  EXPECT_NE(harness::ValidateRunSpec(spec).find("overlaps tenant 'a'"),
            std::string::npos);

  spec.tenants[1].rect = {2, 2, 2, 2};
  spec.tenants[1].name = "a";
  EXPECT_NE(harness::ValidateRunSpec(spec).find("duplicate tenant name 'a'"),
            std::string::npos);

  spec.tenants[1].name = "b";
  spec.tenants[1].workload = "NoSuchWorkload";
  EXPECT_NE(harness::ValidateRunSpec(spec).find("unknown workload"),
            std::string::npos);

  spec.tenants[1].workload = "Synthetic";
  spec.tenants[1].fault.gline_drop_rate = 0.5;
  EXPECT_NE(harness::ValidateRunSpec(spec).find("straggler"),
            std::string::npos);

  spec.tenants[1].fault.gline_drop_rate = 0;
  ASSERT_EQ(harness::ValidateRunSpec(spec), "");
  spec.cfg.fast_forward = true;
  EXPECT_NE(harness::ValidateRunSpec(spec).find("fast-forward"),
            std::string::npos);
}

}  // namespace
}  // namespace glb
