// Workload validation: every benchmark runs on the full simulated CMP
// under every barrier mechanism and core count, and its results must
// match the sequential reference bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/experiment.h"
#include "workloads/em3d.h"
#include "workloads/livermore.h"
#include "workloads/ocean.h"
#include "workloads/synthetic.h"
#include "workloads/unstructured.h"

namespace glb::workloads {
namespace {

using harness::BarrierKind;
using harness::RunExperiment;
using harness::RunMetrics;
using harness::WorkloadFactory;

WorkloadFactory FactoryFor(const std::string& name) {
  if (name == "Synthetic") {
    return []() { return std::make_unique<Synthetic>(25); };
  }
  if (name == "Kernel2") {
    return []() { return std::make_unique<Kernel2>(128, 3); };
  }
  if (name == "Kernel3") {
    return []() { return std::make_unique<Kernel3>(128, 6); };
  }
  if (name == "Kernel6") {
    return []() { return std::make_unique<Kernel6>(48, 2); };
  }
  if (name == "EM3D") {
    Em3d::Config cfg;
    cfg.nodes = 256;
    cfg.timesteps = 3;
    return [cfg]() { return std::make_unique<Em3d>(cfg); };
  }
  if (name == "OCEAN") {
    Ocean::Config cfg;
    cfg.grid = 20;
    cfg.iterations = 3;
    return [cfg]() { return std::make_unique<Ocean>(cfg); };
  }
  Unstructured::Config cfg;
  cfg.nodes = 128;
  cfg.edges = 512;
  cfg.timesteps = 2;
  return [cfg]() { return std::make_unique<Unstructured>(cfg); };
}

struct Param {
  const char* workload;
  BarrierKind barrier;
  std::uint32_t cores;
};

class WorkloadValidation : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadValidation, ResultsMatchSequentialReference) {
  const Param p = GetParam();
  const auto cfg = cmp::CmpConfig::WithCores(p.cores);
  const RunMetrics m =
      RunExperiment(FactoryFor(p.workload), p.barrier, cfg, 2'000'000'000ull);
  ASSERT_TRUE(m.completed) << "simulation timed out / deadlocked";
  EXPECT_EQ(m.validation, "") << "results diverged from the reference";
  EXPECT_GT(m.cycles, 0u);
  if (std::string(p.workload) != "Synthetic") {
    EXPECT_GT(m.total_msgs(), 0u) << "real workloads must use the NoC";
  }
}

std::vector<Param> AllParams() {
  std::vector<Param> out;
  for (const char* w : {"Synthetic", "Kernel2", "Kernel3", "Kernel6", "EM3D",
                        "OCEAN", "UNSTRUCTURED"}) {
    for (BarrierKind b : {BarrierKind::kGL, BarrierKind::kCSW, BarrierKind::kDSW}) {
      for (std::uint32_t cores : {4u, 16u}) {
        out.push_back(Param{w, b, cores});
      }
    }
  }
  // 64 cores = an 8x8 mesh whose G-lines exceed the 6-transmitter
  // budget (relaxed-latency lines) — the workloads must still validate.
  for (const char* w : {"Synthetic", "Kernel2", "Kernel3", "EM3D"}) {
    out.push_back(Param{w, BarrierKind::kGL, 64});
    out.push_back(Param{w, BarrierKind::kDSW, 64});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadValidation,
                         ::testing::ValuesIn(AllParams()),
                         [](const ::testing::TestParamInfo<Param>& pinfo) {
                           const Param& p = pinfo.param;
                           return std::string(p.workload) + "_" +
                                  harness::ToString(p.barrier) + "_" +
                                  std::to_string(p.cores) + "c";
                         });

// A couple of full-width (32-core) validations of the heavier apps.
TEST(WorkloadValidation32, Kernel2At32Cores) {
  const RunMetrics m = RunExperiment(FactoryFor("Kernel2"), BarrierKind::kGL,
                                     cmp::CmpConfig::Table1(), 2'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
  EXPECT_EQ(m.cores, 32u);
}

TEST(WorkloadValidation32, Em3dAt32Cores) {
  Em3d::Config cfg;
  cfg.nodes = 512;
  cfg.timesteps = 2;
  const RunMetrics m = RunExperiment([cfg]() { return std::make_unique<Em3d>(cfg); },
                                     BarrierKind::kDSW, cmp::CmpConfig::Table1(),
                                     2'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
}

// Barrier census: the kernels' structures imply exact barrier counts.
TEST(WorkloadCensus, Kernel2BarriersPerIteration) {
  Kernel2 k(128, 3);
  // n=128: levels for ii = 128,64,...,1 -> 8 levels per iteration.
  EXPECT_EQ(k.levels(), 8u);
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<Kernel2>(128, 3); }, BarrierKind::kGL,
      cmp::CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.barriers, 24u);  // 8 levels x 3 iterations
}

TEST(WorkloadCensus, Kernel3OneBarrierPerIteration) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<Kernel3>(128, 6); }, BarrierKind::kGL,
      cmp::CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.barriers, 6u);
}

TEST(WorkloadCensus, Kernel6BarrierPerRecurrenceStep) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<Kernel6>(48, 2); }, BarrierKind::kGL,
      cmp::CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.barriers, 2u * 47u);  // (n-1) per iteration
}

TEST(WorkloadCensus, SyntheticFourPerIteration) {
  const RunMetrics m = RunExperiment(
      []() { return std::make_unique<Synthetic>(25); }, BarrierKind::kGL,
      cmp::CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.barriers, 100u);
}

// The headline sanity check at small scale: GL barriers beat DSW beat
// CSW on the barrier-dominated synthetic benchmark.
TEST(WorkloadOrdering, SyntheticBarrierCostOrdering) {
  const auto cfg = cmp::CmpConfig::WithCores(16);
  auto run = [&](BarrierKind k) {
    return RunExperiment([]() { return std::make_unique<Synthetic>(50); }, k, cfg,
                         1'000'000'000ull);
  };
  const RunMetrics gl = run(BarrierKind::kGL);
  const RunMetrics dsw = run(BarrierKind::kDSW);
  const RunMetrics csw = run(BarrierKind::kCSW);
  ASSERT_TRUE(gl.completed && dsw.completed && csw.completed);
  EXPECT_LT(gl.cycles, dsw.cycles) << "GL must beat the combining tree";
  EXPECT_LT(dsw.cycles, csw.cycles) << "the tree must beat the central barrier";
  EXPECT_EQ(gl.total_msgs(), 0u) << "GL synthetic run must be traffic-free";
  // Both software barriers pay real coherence traffic; their relative
  // message counts depend on spin/retry dynamics, so only the
  // qualitative claim (software pays, hardware does not) is checked.
  EXPECT_GT(csw.total_msgs(), 0u);
  EXPECT_GT(dsw.total_msgs(), 0u);
}

}  // namespace
}  // namespace glb::workloads
