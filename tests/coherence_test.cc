// Directed tests of the MESI directory protocol: state transitions,
// data movement, upgrades, invalidations, evictions and recalls.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coherence/checker.h"
#include "common/rng.h"
#include "coherence/fabric.h"
#include "common/stats.h"
#include "noc/mesh.h"
#include "sim/engine.h"

namespace glb::coherence {
namespace {

using LineState = L1Controller::LineState;
using DirState = DirController::DirState;

struct Fixture {
  sim::Engine engine;
  StatSet stats;
  mem::BackingStore backing{64};
  std::unique_ptr<noc::Mesh> mesh;
  std::unique_ptr<Fabric> fabric;

  explicit Fixture(std::uint32_t rows = 2, std::uint32_t cols = 2,
                   std::uint32_t l1_bytes = 1024, std::uint32_t l2_bytes = 8192) {
    noc::MeshConfig mc;
    mc.rows = rows;
    mc.cols = cols;
    mesh = std::make_unique<noc::Mesh>(engine, mc, stats);
    CoherenceConfig cc;
    fabric = std::make_unique<Fabric>(engine, *mesh, backing, cc,
                                      mem::CacheGeometry{l1_bytes, 2, 64},
                                      mem::CacheGeometry{l2_bytes, 4, 64}, stats);
  }

  Word SyncLoad(CoreId c, Addr a) {
    Word out = 0;
    bool done = false;
    fabric->l1(c).Load(a, [&](Word v) {
      out = v;
      done = true;
    });
    EXPECT_TRUE(engine.RunUntilIdle(1'000'000));
    EXPECT_TRUE(done) << "load never completed";
    return out;
  }

  void SyncStore(CoreId c, Addr a, Word v) {
    bool done = false;
    fabric->l1(c).Store(a, v, [&]() { done = true; });
    EXPECT_TRUE(engine.RunUntilIdle(1'000'000));
    EXPECT_TRUE(done) << "store never completed";
  }

  Word SyncAmo(CoreId c, Addr a, AmoOp op, Word operand, Word operand2 = 0) {
    Word out = 0;
    bool done = false;
    fabric->l1(c).Amo(a, op, operand, operand2, [&](Word old) {
      out = old;
      done = true;
    });
    EXPECT_TRUE(engine.RunUntilIdle(1'000'000));
    EXPECT_TRUE(done) << "AMO never completed";
    return out;
  }

  void ExpectCoherent() {
    CoherenceChecker checker(*fabric);
    const auto errors = checker.Check();
    EXPECT_TRUE(errors.empty());
    for (const auto& e : errors) ADD_FAILURE() << e;
  }
};

TEST(Coherence, ColdLoadReturnsBackingValueAndGrantsE) {
  Fixture f;
  f.backing.WriteWord(0x1000, 1234);
  EXPECT_EQ(f.SyncLoad(0, 0x1000), 1234u);
  EXPECT_EQ(f.fabric->l1(0).StateOf(0x1000), LineState::kE) << "MESI: sole reader gets E";
  const auto* meta = f.fabric->home(f.fabric->HomeOf(0x1000)).Probe(0x1000);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->state, DirState::kExclusive);
  EXPECT_EQ(meta->owner, 0u);
  f.ExpectCoherent();
}

TEST(Coherence, SecondReaderDowngradesToShared) {
  Fixture f;
  f.backing.WriteWord(0x1000, 5);
  f.SyncLoad(0, 0x1000);
  EXPECT_EQ(f.SyncLoad(1, 0x1000), 5u);
  EXPECT_EQ(f.fabric->l1(0).StateOf(0x1000), LineState::kS);
  EXPECT_EQ(f.fabric->l1(1).StateOf(0x1000), LineState::kS);
  const auto* meta = f.fabric->home(f.fabric->HomeOf(0x1000)).Probe(0x1000);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->state, DirState::kShared);
  f.ExpectCoherent();
}

TEST(Coherence, StoreMissGrantsM) {
  Fixture f;
  f.SyncStore(2, 0x2000, 42);
  EXPECT_EQ(f.fabric->l1(2).StateOf(0x2000), LineState::kM);
  EXPECT_EQ(f.SyncLoad(2, 0x2000), 42u) << "own store visible";
  f.ExpectCoherent();
}

TEST(Coherence, ReaderSeesWritersData) {
  Fixture f;
  f.SyncStore(0, 0x3000, 99);
  EXPECT_EQ(f.SyncLoad(3, 0x3000), 99u) << "FwdGetS must return dirty data";
  EXPECT_EQ(f.fabric->l1(0).StateOf(0x3000), LineState::kS) << "writer downgraded";
  EXPECT_EQ(f.fabric->l1(3).StateOf(0x3000), LineState::kS);
  f.ExpectCoherent();
}

TEST(Coherence, WriterStealsFromWriter) {
  Fixture f;
  f.SyncStore(0, 0x3000, 7);
  f.SyncStore(1, 0x3000, 8);
  EXPECT_EQ(f.fabric->l1(0).StateOf(0x3000), LineState::kI) << "FwdGetX invalidates";
  EXPECT_EQ(f.fabric->l1(1).StateOf(0x3000), LineState::kM);
  EXPECT_EQ(f.SyncLoad(2, 0x3000), 8u);
  f.ExpectCoherent();
}

TEST(Coherence, UpgradeInvalidatesAllSharers) {
  Fixture f;
  for (CoreId c = 0; c < 4; ++c) f.SyncLoad(c, 0x4000);
  f.SyncStore(2, 0x4000, 11);
  EXPECT_EQ(f.fabric->l1(2).StateOf(0x4000), LineState::kM);
  for (CoreId c : {0u, 1u, 3u}) {
    EXPECT_EQ(f.fabric->l1(c).StateOf(0x4000), LineState::kI) << "core " << c;
  }
  f.ExpectCoherent();
}

TEST(Coherence, SilentEToMUpgradeIsLocal) {
  Fixture f;
  f.SyncLoad(1, 0x5000);  // E
  const auto misses_before = f.stats.CounterValue("l1.misses");
  f.SyncStore(1, 0x5000, 3);  // silent E->M, no new miss
  EXPECT_EQ(f.stats.CounterValue("l1.misses"), misses_before);
  EXPECT_EQ(f.fabric->l1(1).StateOf(0x5000), LineState::kM);
  f.ExpectCoherent();
}

TEST(Coherence, StoreHitInSIsAnUpgradeMiss) {
  Fixture f;
  f.SyncLoad(0, 0x6000);
  f.SyncLoad(1, 0x6000);  // both S
  const auto upg_before = f.stats.CounterValue("l1.upgrades");
  f.SyncStore(0, 0x6000, 1);
  EXPECT_EQ(f.stats.CounterValue("l1.upgrades"), upg_before + 1);
  f.ExpectCoherent();
}

TEST(Coherence, AmoFetchAddSequential) {
  Fixture f;
  EXPECT_EQ(f.SyncAmo(0, 0x7000, AmoOp::kFetchAdd, 5), 0u);
  EXPECT_EQ(f.SyncAmo(1, 0x7000, AmoOp::kFetchAdd, 3), 5u);
  EXPECT_EQ(f.SyncAmo(2, 0x7000, AmoOp::kFetchAdd, 2), 8u);
  EXPECT_EQ(f.SyncLoad(3, 0x7000), 10u);
  f.ExpectCoherent();
}

TEST(Coherence, AmoVariants) {
  Fixture f;
  EXPECT_EQ(f.SyncAmo(0, 0x7100, AmoOp::kSwap, 9), 0u);
  EXPECT_EQ(f.SyncAmo(0, 0x7100, AmoOp::kSwap, 4), 9u);
  EXPECT_EQ(f.SyncAmo(1, 0x7140, AmoOp::kTestAndSet, 1), 0u);
  EXPECT_EQ(f.SyncAmo(1, 0x7140, AmoOp::kTestAndSet, 1), 1u) << "second T&S sees lock held";
  // CAS success then failure.
  EXPECT_EQ(f.SyncAmo(2, 0x7180, AmoOp::kCompareAndSwap, 0, 50), 0u);
  EXPECT_EQ(f.SyncLoad(2, 0x7180), 50u);
  EXPECT_EQ(f.SyncAmo(2, 0x7180, AmoOp::kCompareAndSwap, 0, 99), 50u);
  EXPECT_EQ(f.SyncLoad(2, 0x7180), 50u) << "failed CAS must not write";
  f.ExpectCoherent();
}

TEST(Coherence, ConcurrentFetchAddsAreAtomic) {
  // All four cores hammer one counter concurrently; the sum must be
  // exact regardless of interleaving.
  Fixture f;
  constexpr int kPerCore = 25;
  int outstanding = 0;
  // The issuers outlive the run below, so the chained callbacks can hold
  // plain pointers; a self-referential shared_ptr capture would leak.
  std::vector<std::unique_ptr<std::function<void(int)>>> issuers;
  for (CoreId c = 0; c < 4; ++c) {
    ++outstanding;
    issuers.push_back(std::make_unique<std::function<void(int)>>());
    std::function<void(int)>* issue = issuers.back().get();
    *issue = [&f, c, issue, &outstanding](int remaining) {
      if (remaining == 0) {
        --outstanding;
        return;
      }
      f.fabric->l1(c).Amo(0x8000, AmoOp::kFetchAdd, 1, 0,
                          [issue, remaining](Word) { (*issue)(remaining - 1); });
    };
    (*issue)(kPerCore);
  }
  ASSERT_TRUE(f.engine.RunUntilIdle(10'000'000));
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(f.SyncLoad(0, 0x8000), 4u * kPerCore);
  f.ExpectCoherent();
}

TEST(Coherence, L1EvictionWritesBackThroughL2) {
  // L1 is 1KB 2-way (8 sets): two stores to line addresses 1024 bytes
  // apart share a set; a third conflicting store evicts the LRU dirty
  // line, whose data must survive in the L2 and be readable elsewhere.
  Fixture f;
  const Addr kA = 0x10000, kB = kA + 1024, kC = kA + 2048;
  f.SyncStore(0, kA, 100);
  f.SyncStore(0, kB, 200);
  f.SyncStore(0, kC, 300);  // evicts kA (dirty)
  EXPECT_EQ(f.fabric->l1(0).StateOf(kA), LineState::kI);
  EXPECT_EQ(f.SyncLoad(1, kA), 100u) << "written-back data must be served";
  EXPECT_EQ(f.SyncLoad(1, kB), 200u);
  EXPECT_EQ(f.SyncLoad(1, kC), 300u);
  f.ExpectCoherent();
}

TEST(Coherence, CleanEvictionIsSilentForS) {
  Fixture f;
  const Addr kA = 0x10000, kB = kA + 1024, kC = kA + 2048;
  // Make kA shared (S in two cores), then evict it from core 0.
  f.SyncLoad(0, kA);
  f.SyncLoad(1, kA);
  const auto wb_before = f.stats.CounterValue("l1.writebacks");
  f.SyncLoad(0, kB);
  f.SyncLoad(0, kC);  // evicts kA from core 0 silently
  EXPECT_EQ(f.fabric->l1(0).StateOf(kA), LineState::kI);
  EXPECT_EQ(f.stats.CounterValue("l1.writebacks"), wb_before)
      << "S eviction must not produce a write-back";
  f.ExpectCoherent();
}

TEST(Coherence, L2RecallPreservesDirtyData) {
  // Tiny L2 (1KB per bank, 4-way => 4 sets): walking many lines that
  // map to one home bank forces recalls of lines still dirty in an L1.
  Fixture f(2, 2, /*l1_bytes=*/8192, /*l2_bytes=*/1024);
  // All these addresses have home bank (line/64)%4; choose home 0:
  // line numbers multiples of 4 => addresses multiples of 256.
  std::vector<Addr> addrs;
  for (int i = 0; i < 24; ++i) addrs.push_back(0x20000 + static_cast<Addr>(i) * 256);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    f.SyncStore(1, addrs[i], 1000 + static_cast<Word>(i));
  }
  EXPECT_GT(f.stats.CounterValue("l2.recalls"), 0u) << "test must exercise recalls";
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(f.SyncLoad(2, addrs[i]), 1000 + static_cast<Word>(i)) << "addr " << addrs[i];
  }
  f.ExpectCoherent();
}

TEST(Coherence, RecallOfSharedLineInvalidatesSharers) {
  Fixture f(2, 2, 8192, 1024);
  const Addr target = 0x20000;
  f.SyncLoad(0, target);
  f.SyncLoad(1, target);  // shared in two L1s
  // Thrash the home bank set so `target` is recalled.
  for (int i = 1; i <= 24; ++i) {
    f.SyncLoad(3, target + static_cast<Addr>(i) * 256);
  }
  EXPECT_EQ(f.fabric->l1(0).StateOf(target), LineState::kI);
  EXPECT_EQ(f.fabric->l1(1).StateOf(target), LineState::kI);
  f.ExpectCoherent();
}

TEST(Coherence, DirtyDataSurvivesRecallToDram) {
  Fixture f(2, 2, 8192, 1024);
  const Addr target = 0x20000;
  f.SyncStore(0, target, 777);
  for (int i = 1; i <= 24; ++i) {
    f.SyncLoad(3, target + static_cast<Addr>(i) * 256);
  }
  // target was recalled all the way to DRAM; reading it again must
  // still produce the stored value.
  EXPECT_EQ(f.SyncLoad(2, target), 777u);
  EXPECT_EQ(f.backing.ReadWord(target), 777u) << "recall must have written DRAM";
  f.ExpectCoherent();
}

TEST(Coherence, TrafficClassesFlow) {
  Fixture f;
  f.SyncStore(0, 0x9000, 1);
  f.SyncLoad(1, 0x9000);
  EXPECT_GT(f.stats.CounterValue("noc.msgs.request") +
                f.stats.CounterValue("noc.local_msgs"),
            0u);
  EXPECT_GT(f.stats.CounterValue("coh.sent.GetS"), 0u);
  EXPECT_GT(f.stats.CounterValue("coh.sent.GetX"), 0u);
  EXPECT_GT(f.stats.CounterValue("coh.sent.Data"), 0u);
  EXPECT_GT(f.stats.CounterValue("coh.sent.FwdGetS"), 0u);
}

TEST(Coherence, WordsWithinLineAreIndependent) {
  Fixture f;
  for (int w = 0; w < 8; ++w) {
    f.SyncStore(0, 0xa000 + static_cast<Addr>(w) * 8, static_cast<Word>(w * w));
  }
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(f.SyncLoad(1, 0xa000 + static_cast<Addr>(w) * 8),
              static_cast<Word>(w * w));
  }
  f.ExpectCoherent();
}

TEST(Coherence, AllocationRetriesWhenEveryWayIsPinned) {
  // One-set L2 bank (256B, 4-way) + short DRAM latency: 16 cores
  // hammering 8 lines of that set keep more transactions open than the
  // set has ways, so allocations must take the pinned-set retry path
  // and still complete correctly.
  sim::Engine engine;
  StatSet stats;
  mem::BackingStore backing(64);
  noc::MeshConfig mc;
  mc.rows = 4;
  mc.cols = 4;
  noc::Mesh mesh(engine, mc, stats);
  CoherenceConfig cc;
  cc.dram_latency = 5;  // keep fetches inside the busy window
  Fabric fabric(engine, mesh, backing, cc, mem::CacheGeometry{512, 2, 64},
                mem::CacheGeometry{256, 4, 64}, stats);
  int active = 16;
  std::vector<std::shared_ptr<std::function<void(int)>>> drv(16);
  std::vector<Rng> rngs;
  for (CoreId c = 0; c < 16; ++c) rngs.emplace_back(42 + c);
  for (CoreId c = 0; c < 16; ++c) {
    drv[c] = std::make_shared<std::function<void(int)>>();
    *drv[c] = [&, c](int rem) {
      if (rem == 0) {
        --active;
        return;
      }
      // 8 lines, stride 1024 B: all home bank 0, all L2 set 0.
      const Addr a = 0x30000 + rngs[c].NextBelow(8) * 1024;
      const auto cont = [&, c, rem]() { (*drv[c])(rem - 1); };
      if (rngs[c].NextBool(0.5)) {
        fabric.l1(c).Load(a, [cont](Word) { cont(); });
      } else {
        fabric.l1(c).Store(a, rngs[c].Next(), cont);
      }
    };
    engine.ScheduleAt(0, [&, c]() { (*drv[c])(200); });
  }
  ASSERT_TRUE(engine.RunUntilIdle(100'000'000));
  EXPECT_EQ(active, 0);
  EXPECT_GT(stats.CounterValue("l2.alloc_retries"), 0u)
      << "the pinned-set retry path was never exercised";
  CoherenceChecker checker(fabric);
  for (const auto& e : checker.Check()) ADD_FAILURE() << e;
}

TEST(Coherence, MissLatencyIncludesL2AndNetwork) {
  Fixture f;
  // Cold load: must cost at least DRAM latency (400).
  const Cycle t0 = f.engine.Now();
  f.SyncLoad(0, 0xb000);
  const Cycle cold = f.engine.Now() - t0;
  EXPECT_GE(cold, 400u);
  // Hit: exactly l1_latency.
  const Cycle t1 = f.engine.Now();
  f.SyncLoad(0, 0xb000);
  EXPECT_EQ(f.engine.Now() - t1, 1u);
}

}  // namespace
}  // namespace glb::coherence
