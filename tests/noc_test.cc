// NoC tests: XY routing, latency model, serialization, contention,
// per-VN FIFO ordering, traffic accounting.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/stats.h"
#include "noc/mesh.h"
#include "sim/engine.h"

namespace glb::noc {
namespace {

struct Fixture {
  sim::Engine engine;
  StatSet stats;
  MeshConfig cfg;
  std::unique_ptr<Mesh> mesh;

  explicit Fixture(std::uint32_t rows = 4, std::uint32_t cols = 4,
                   std::uint32_t link_bytes = 75) {
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.link_bytes = link_bytes;
    mesh = std::make_unique<Mesh>(engine, cfg, stats);
  }

  /// Sends a packet and returns its delivery cycle.
  Cycle SendAndMeasure(CoreId src, CoreId dst, std::uint32_t bytes,
                       VNet vnet = VNet::kRequest) {
    Cycle delivered = kCycleNever;
    Packet p;
    p.src = src;
    p.dst = dst;
    p.vnet = vnet;
    p.traffic = TrafficClass::kRequest;
    p.bytes = bytes;
    p.deliver = [&delivered, this]() { delivered = engine.Now(); };
    mesh->Send(std::move(p));
    engine.RunUntilIdle();
    return delivered;
  }

  /// Unloaded end-to-end latency per the timing model.
  Cycle ExpectedLatency(CoreId src, CoreId dst, std::uint32_t bytes) const {
    if (src == dst) return cfg.local_latency;  // never enters the mesh
    const auto h = mesh->Hops(src, dst);
    const auto flits = mesh->FlitsOf(bytes);
    return cfg.router_latency +
           h * (flits + cfg.link_latency + cfg.router_latency);
  }
};

TEST(MeshGeometry, RowColMapping) {
  Fixture f(3, 5);
  EXPECT_EQ(f.mesh->RowOf(0), 0u);
  EXPECT_EQ(f.mesh->ColOf(0), 0u);
  EXPECT_EQ(f.mesh->RowOf(7), 1u);
  EXPECT_EQ(f.mesh->ColOf(7), 2u);
  EXPECT_EQ(f.mesh->NodeAt(2, 4), 14u);
}

TEST(MeshGeometry, ManhattanHops) {
  Fixture f(4, 4);
  EXPECT_EQ(f.mesh->Hops(0, 0), 0u);
  EXPECT_EQ(f.mesh->Hops(0, 3), 3u);
  EXPECT_EQ(f.mesh->Hops(0, 15), 6u);
  EXPECT_EQ(f.mesh->Hops(5, 10), 2u);
}

TEST(MeshGeometry, FlitCounts) {
  Fixture f(2, 2, /*link_bytes=*/75);
  EXPECT_EQ(f.mesh->FlitsOf(11), 1u);
  EXPECT_EQ(f.mesh->FlitsOf(75), 1u);
  EXPECT_EQ(f.mesh->FlitsOf(76), 2u);
  EXPECT_EQ(f.mesh->FlitsOf(150), 2u);
  EXPECT_EQ(f.mesh->FlitsOf(0), 1u);
}

TEST(MeshTiming, LocalDelivery) {
  Fixture f;
  EXPECT_EQ(f.SendAndMeasure(5, 5, 16), f.cfg.local_latency);
  EXPECT_EQ(f.stats.CounterValue("noc.local_msgs"), 1u);
  EXPECT_EQ(f.stats.SumCountersWithPrefix("noc.msgs."), 0u);
}

TEST(MeshTiming, SingleHopUnloadedLatency) {
  Fixture f;
  EXPECT_EQ(f.SendAndMeasure(0, 1, 16), f.ExpectedLatency(0, 1, 16));
}

TEST(MeshTiming, MultiHopUnloadedLatency) {
  Fixture f;
  EXPECT_EQ(f.SendAndMeasure(0, 15, 16), f.ExpectedLatency(0, 15, 16));
}

TEST(MeshTiming, MultiFlitSerialization) {
  Fixture f(2, 2, /*link_bytes=*/16);
  // 64-byte payload = 4 flits: each hop costs 4 serialization cycles.
  EXPECT_EQ(f.SendAndMeasure(0, 3, 64), f.ExpectedLatency(0, 3, 64));
  EXPECT_GT(f.ExpectedLatency(0, 3, 64), f.ExpectedLatency(0, 3, 8));
}

// Exhaustive sweep: every (src, dst) pair in a 4x4 mesh observes exactly
// the analytic unloaded latency (routing and pipeline are correct).
class AllPairsLatency : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllPairsLatency, MatchesModel) {
  const auto [src, dst] = GetParam();
  Fixture f;
  EXPECT_EQ(f.SendAndMeasure(static_cast<CoreId>(src), static_cast<CoreId>(dst), 16),
            f.ExpectedLatency(static_cast<CoreId>(src), static_cast<CoreId>(dst), 16));
}

INSTANTIATE_TEST_SUITE_P(Mesh4x4, AllPairsLatency,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Range(0, 16)));

TEST(MeshContention, SharedLinkSerializes) {
  // Two single-flit packets injected the same cycle traverse 0->1; the
  // second must arrive at least one serialization slot later.
  Fixture f(1, 4);
  std::vector<Cycle> arrivals;
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 3;
    p.vnet = VNet::kRequest;
    p.traffic = TrafficClass::kRequest;
    p.bytes = 16;
    p.deliver = [&]() { arrivals.push_back(f.engine.Now()); };
    f.mesh->Send(std::move(p));
  }
  f.engine.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 1u) << "pipelined packets should be 1 cycle apart";
}

TEST(MeshContention, HotSpotQueueingGrows) {
  // Many cores converge on node 0 with more demand than the incoming
  // links can carry: the tail arrival suffers real queueing delay well
  // above the unloaded latency of the farthest source.
  Fixture f(4, 4);
  std::vector<Cycle> arrivals;
  constexpr int kPerSource = 4;
  for (int k = 0; k < kPerSource; ++k) {
    for (CoreId src = 1; src < 16; ++src) {
      Packet p;
      p.src = src;
      p.dst = 0;
      p.vnet = VNet::kRequest;
      p.traffic = TrafficClass::kRequest;
      p.bytes = 75;
      p.deliver = [&]() { arrivals.push_back(f.engine.Now()); };
      f.mesh->Send(std::move(p));
    }
  }
  f.engine.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 15u * kPerSource);
  const Cycle unloaded_max = f.ExpectedLatency(15, 0, 75);
  // 12 sources (48 packets) funnel through the single link 4->0 at one
  // flit per cycle, so the tail must be far beyond the unloaded path.
  EXPECT_GT(arrivals.back(), unloaded_max + 20)
      << "hot-spot convergence must show queueing delay";
}

TEST(MeshOrdering, SameVnetSameFlowIsFifo) {
  Fixture f(2, 4);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 7;
    p.vnet = VNet::kResponse;
    p.traffic = TrafficClass::kReply;
    p.bytes = 75;
    p.deliver = [&order, i]() { order.push_back(i); };
    f.mesh->Send(std::move(p));
  }
  f.engine.RunUntilIdle();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(MeshStats, TrafficClassAccounting) {
  Fixture f;
  f.SendAndMeasure(0, 1, 20, VNet::kRequest);
  {
    Packet p;
    p.src = 1;
    p.dst = 2;
    p.vnet = VNet::kResponse;
    p.traffic = TrafficClass::kReply;
    p.bytes = 75;
    p.deliver = []() {};
    f.mesh->Send(std::move(p));
    Packet q;
    q.src = 2;
    q.dst = 3;
    q.vnet = VNet::kForward;
    q.traffic = TrafficClass::kCoherence;
    q.bytes = 11;
    q.deliver = []() {};
    f.mesh->Send(std::move(q));
  }
  f.engine.RunUntilIdle();
  EXPECT_EQ(f.stats.CounterValue("noc.msgs.request"), 1u);
  EXPECT_EQ(f.stats.CounterValue("noc.msgs.reply"), 1u);
  EXPECT_EQ(f.stats.CounterValue("noc.msgs.coherence"), 1u);
  EXPECT_EQ(f.stats.CounterValue("noc.bytes.request"), 20u);
  EXPECT_EQ(f.stats.CounterValue("noc.bytes.reply"), 75u);
}

TEST(MeshStats, LatencyHistogramPopulated) {
  Fixture f;
  f.SendAndMeasure(0, 15, 16);
  const Histogram* h = f.stats.FindHistogram("noc.msg_latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min(), f.ExpectedLatency(0, 15, 16));
}

TEST(MeshHeatmap, SingleRouteChargesEachCrossedLink) {
  Fixture f;  // 4x4
  // 0 -> 3: three eastward hops; 100 bytes = 2 flits per link crossing.
  f.SendAndMeasure(0, 3, 100);
  const std::uint64_t flits = f.mesh->FlitsOf(100);
  EXPECT_EQ(flits, 2u);
  EXPECT_EQ(f.mesh->LinkFlits(0, 0), flits);  // 0E
  EXPECT_EQ(f.mesh->LinkFlits(1, 0), flits);  // 1E
  EXPECT_EQ(f.mesh->LinkFlits(2, 0), flits);  // 2E
  EXPECT_EQ(f.mesh->LinkFlits(3, 0), 0u);     // dst ejects, no further hop
  // Router pipeline: traversed at source, intermediates, and destination.
  for (CoreId n = 0; n <= 3; ++n) EXPECT_EQ(f.mesh->RouterFlits(n), flits);
  EXPECT_EQ(f.mesh->RouterFlits(4), 0u);
}

TEST(MeshHeatmap, LinkFlitsSumToFlitsSent) {
  Fixture f(4, 4);
  // A mixed batch: multi-hop X+Y routes, a reverse route, a multi-flit
  // payload, and a local delivery (which must not touch the mesh).
  f.SendAndMeasure(0, 15, 16);
  f.SendAndMeasure(15, 0, 200);
  f.SendAndMeasure(5, 6, 75);
  f.SendAndMeasure(9, 9, 64);  // local
  std::uint64_t link_sum = 0;
  for (CoreId n = 0; n < 16; ++n) {
    for (int d = 0; d < Mesh::kNumLinkDirs; ++d) link_sum += f.mesh->LinkFlits(n, d);
  }
  EXPECT_GT(link_sum, 0u);
  // Every flit crosses exactly Hops(src, dst) links (the mesh.h
  // invariant the heatmap block inherits).
  EXPECT_EQ(link_sum, f.stats.CounterValue("noc.flits_sent"));
}

}  // namespace
}  // namespace glb::noc
