// Run-manifest tests: schema/version stamping, config echo, stats
// block (counters + histogram percentiles), and the JSONL append
// convention used for BENCH_*.json files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/prof.h"
#include "harness/manifest.h"
#include "trace/sampler.h"
#include "workloads/synthetic.h"

namespace glb::harness {
namespace {

struct Fixture {
  cmp::CmpConfig cfg;
  RunMetrics metrics;
  StatSet stats;

  // One real 4-core Synthetic/GL run so the manifest carries live
  // counters, plus a hand-fed histogram with known percentiles.
  Fixture() : cfg(cmp::CmpConfig::WithCores(4)) {
    cmp::CmpSystem sys(cfg);
    workloads::Synthetic wl(5);
    wl.Init(sys);
    auto barrier = MakeBarrier(BarrierKind::kGL, sys);
    const sim::RunStatus status = sys.RunProgramsStatus(
        [&](core::Core& c, CoreId id) { return wl.Body(c, id, *barrier); },
        kCycleNever);
    metrics = CollectMetrics(sys, status, wl, "GL");
    sys.stats().ForEachCounter([&](const std::string& name, const Counter& c) {
      stats.GetCounter(name)->Inc(c.value());
    });
    sys.stats().ForEachHistogram([&](const std::string& name, const Histogram& h) {
      stats.GetHistogram(name)->Merge(h);
    });
    Histogram* h = stats.GetHistogram("test.latency");
    for (std::uint64_t v = 1; v <= 100; ++v) h->Record(v);
  }
};

json::Value ParseManifest(const std::string& text) {
  std::string err;
  auto v = json::Parse(text, &err);
  EXPECT_TRUE(v.has_value()) << err;
  return v.value_or(json::Value{});
}

TEST(Manifest, CarriesSchemaVersionAndConfigEcho) {
  Fixture fx;
  std::ostringstream os;
  ManifestOptions opts;
  opts.tool = "manifest_test";
  WriteRunManifest(os, fx.metrics, fx.cfg, fx.stats, opts);
  const json::Value doc = ParseManifest(os.str());

  EXPECT_EQ(doc.StringOr("schema", ""), kRunManifestSchema);
  EXPECT_DOUBLE_EQ(doc.NumberOr("schema_version", 0.0),
                   static_cast<double>(kRunManifestVersion));
  EXPECT_EQ(doc.StringOr("tool", ""), "manifest_test");

  const json::Value* run = doc.Find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->StringOr("workload", ""), "Synthetic");
  EXPECT_EQ(run->StringOr("barrier", ""), "GL");
  EXPECT_DOUBLE_EQ(run->NumberOr("cores", 0.0), 4.0);
  EXPECT_EQ(run->Find("completed")->bool_v, true);
  ASSERT_NE(run->Find("breakdown"), nullptr);
  ASSERT_NE(run->Find("breakdown")->Find("barrier"), nullptr);
  ASSERT_NE(run->Find("noc_msgs"), nullptr);
  ASSERT_NE(run->Find("fault_outcome"), nullptr);

  const json::Value* config = doc.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->NumberOr("rows", 0.0) * config->NumberOr("cols", 0.0),
                   4.0);
  EXPECT_DOUBLE_EQ(config->Find("l1")->NumberOr("line_bytes", 0.0),
                   static_cast<double>(fx.cfg.l1.line_bytes));
  ASSERT_NE(config->Find("gline"), nullptr);
  ASSERT_NE(config->Find("noc"), nullptr);
  ASSERT_NE(config->Find("fault"), nullptr);
  EXPECT_EQ(config->Find("fault")->Find("enabled")->bool_v, false);
}

TEST(Manifest, StatsBlockHasAllCountersAndPercentiles) {
  Fixture fx;
  std::ostringstream os;
  WriteRunManifest(os, fx.metrics, fx.cfg, fx.stats, {});
  const json::Value doc = ParseManifest(os.str());

  const json::Value* counters = doc.Find("stats")->Find("counters");
  ASSERT_NE(counters, nullptr);
  // Every counter in the StatSet must be echoed verbatim.
  std::size_t expected = 0;
  fx.stats.ForEachCounter([&](const std::string& name, const Counter& c) {
    ++expected;
    const json::Value* v = counters->Find(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_DOUBLE_EQ(v->num_v, static_cast<double>(c.value())) << name;
  });
  EXPECT_EQ(counters->obj.size(), expected);
  EXPECT_GT(counters->Find("core.barriers")->num_v, 0.0);

  const json::Value* h = doc.Find("stats")->Find("histograms")->Find("test.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->NumberOr("count", 0.0), 100.0);
  EXPECT_DOUBLE_EQ(h->NumberOr("min", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->NumberOr("max", 0.0), 100.0);
  const double p50 = h->NumberOr("p50", -1.0);
  const double p95 = h->NumberOr("p95", -1.0);
  const double p99 = h->NumberOr("p99", -1.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Power-of-two buckets: approximations stay within one bucket width.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_LE(p99, 100.0);
}

TEST(Manifest, PrettyAndCompactParseToSameDocument) {
  Fixture fx;
  std::ostringstream compact, pretty;
  ManifestOptions opts;
  WriteRunManifest(compact, fx.metrics, fx.cfg, fx.stats, opts);
  opts.pretty = true;
  WriteRunManifest(pretty, fx.metrics, fx.cfg, fx.stats, opts);
  EXPECT_EQ(compact.str().find('\n'), std::string::npos);
  EXPECT_NE(pretty.str().find('\n'), std::string::npos);

  const json::Value a = ParseManifest(compact.str());
  const json::Value b = ParseManifest(pretty.str());
  EXPECT_EQ(a.Find("run")->NumberOr("cycles", -1.0),
            b.Find("run")->NumberOr("cycles", -2.0));
  EXPECT_EQ(a.Find("stats")->Find("counters")->obj.size(),
            b.Find("stats")->Find("counters")->obj.size());
}

TEST(Manifest, AppendsJsonlLines) {
  Fixture fx;
  const std::string path = ::testing::TempDir() + "/glb_manifest_test.jsonl";
  std::remove(path.c_str());
  ManifestOptions opts;
  opts.tool = "append_a";
  ASSERT_TRUE(AppendRunManifestLine(path, fx.metrics, fx.cfg, fx.stats, opts));
  opts.tool = "append_b";
  opts.pretty = true;  // must be forced compact for JSONL
  ASSERT_TRUE(AppendRunManifestLine(path, fx.metrics, fx.cfg, fx.stats, opts));

  std::ifstream f(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(ParseManifest(lines[0]).StringOr("tool", ""), "append_a");
  EXPECT_EQ(ParseManifest(lines[1]).StringOr("tool", ""), "append_b");
}

TEST(Manifest, AppendFailsOnUnwritablePath) {
  Fixture fx;
  EXPECT_FALSE(AppendRunManifestLine("/nonexistent-dir/x.jsonl", fx.metrics, fx.cfg,
                                     fx.stats, {}));
}

// The byte-identity contract of the observability blocks: options left
// at their defaults — or set to objects that are themselves disabled —
// must produce the exact bytes of a manifest from a build that predates
// the blocks.
TEST(ManifestObservability, DisabledBlocksLeaveTheManifestByteIdentical) {
  Fixture fx;
  std::ostringstream baseline, with_disabled;
  WriteRunManifest(baseline, fx.metrics, fx.cfg, fx.stats, {});

  sim::Engine idle_engine;
  trace::Sampler disabled_sampler(idle_engine, fx.stats, /*interval=*/0);
  ManifestOptions opts;
  opts.sampler = &disabled_sampler;  // set but disabled: still skipped
  WriteRunManifest(with_disabled, fx.metrics, fx.cfg, fx.stats, opts);
  EXPECT_EQ(baseline.str(), with_disabled.str());

  const json::Value doc = ParseManifest(baseline.str());
  EXPECT_EQ(doc.Find("noc_heatmap"), nullptr);
  EXPECT_EQ(doc.Find("hier_levels"), nullptr);
  EXPECT_EQ(doc.Find("host_profile"), nullptr);
  EXPECT_EQ(doc.Find("timeseries"), nullptr);
}

TEST(ManifestObservability, HeatmapBlockCarriesTheGrids) {
  Fixture fx;
  NocHeatmap hm;
  hm.rows = 2;
  hm.cols = 2;
  hm.router_flits = {1, 2, 3, 4};
  for (auto& grid : hm.link_flits) grid = {0, 5, 0, 7};
  ManifestOptions opts;
  opts.heatmap = &hm;
  std::ostringstream os;
  WriteRunManifest(os, fx.metrics, fx.cfg, fx.stats, opts);
  const json::Value doc = ParseManifest(os.str());

  const json::Value* block = doc.Find("noc_heatmap");
  ASSERT_NE(block, nullptr);
  EXPECT_DOUBLE_EQ(block->NumberOr("rows", 0), 2.0);
  ASSERT_NE(block->Find("router_flits"), nullptr);
  EXPECT_EQ(block->Find("router_flits")->arr.size(), 4u);
  EXPECT_DOUBLE_EQ(block->Find("router_flits")->arr[3].num_v, 4.0);
  const json::Value* links = block->Find("link_flits");
  ASSERT_NE(links, nullptr);
  ASSERT_EQ(links->obj.size(), 4u);  // E, W, N, S
  EXPECT_EQ(links->obj[0].first, "E");
  EXPECT_DOUBLE_EQ(links->Find("N")->arr[1].num_v, 5.0);
}

TEST(ManifestObservability, HostProfileBlockPartitionsCategories) {
  Fixture fx;
  prof::Snapshot snap;
  snap.ns[static_cast<std::size_t>(prof::Cat::kEngine)] = 3'000'000;
  snap.ns[static_cast<std::size_t>(prof::Cat::kBarrier)] = 1'000'000;
  ManifestOptions opts;
  opts.host_profile = &snap;
  std::ostringstream os;
  WriteRunManifest(os, fx.metrics, fx.cfg, fx.stats, opts);
  const json::Value doc = ParseManifest(os.str());

  const json::Value* block = doc.Find("host_profile");
  ASSERT_NE(block, nullptr);
  EXPECT_DOUBLE_EQ(block->NumberOr("total_ms", 0), 4.0);
  const json::Value* cats = block->Find("categories_ms");
  ASSERT_NE(cats, nullptr);
  EXPECT_EQ(cats->obj.size(), static_cast<std::size_t>(prof::kNumCats));
  EXPECT_DOUBLE_EQ(cats->NumberOr("engine", 0), 3.0);
  EXPECT_DOUBLE_EQ(cats->NumberOr("barrier", 0), 1.0);
  EXPECT_DOUBLE_EQ(cats->NumberOr("noc", -1), 0.0);
}

TEST(ManifestObservability, TimeseriesDocumentRoundTrips) {
  StatSet stats;
  Counter* c = stats.GetCounter("series.a");
  sim::Engine engine;
  trace::Sampler sampler(engine, stats, /*interval=*/5);
  sampler.Start();
  engine.ScheduleIn(0, [&engine, c]() {
    c->Inc(10);
    engine.ScheduleIn(7, [c]() { c->Inc(1); });
  });
  engine.RunUntilIdle();
  sampler.FinalSample();
  ASSERT_FALSE(sampler.samples().empty());

  TimeseriesMeta meta;
  meta.tool = "manifest_test";
  meta.workload = "Synthetic";
  meta.barrier = "GL";
  meta.cores = 4;
  std::ostringstream os;
  WriteTimeseries(os, sampler, meta);
  const json::Value doc = ParseManifest(os.str());

  EXPECT_EQ(doc.StringOr("schema", ""), kTimeseriesSchema);
  EXPECT_DOUBLE_EQ(doc.NumberOr("schema_version", 0),
                   static_cast<double>(kTimeseriesVersion));
  EXPECT_EQ(doc.Find("run")->StringOr("workload", ""), "Synthetic");
  EXPECT_DOUBLE_EQ(doc.NumberOr("interval", 0), 5.0);
  const json::Value* samples = doc.Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->arr.size(), 2u);  // t=5 (value 10), final t=7 (value 11)
  EXPECT_DOUBLE_EQ(samples->arr[0].NumberOr("t", 0), 5.0);
  EXPECT_DOUBLE_EQ(samples->arr[0].Find("counters")->NumberOr("series.a", 0), 10.0);
  EXPECT_DOUBLE_EQ(samples->arr[1].Find("counters")->NumberOr("series.a", 0), 11.0);

  // JSONL append parses back as the same schema.
  const std::string path = ::testing::TempDir() + "/glb_timeseries_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(AppendTimeseriesLine(path, sampler, meta));
  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_EQ(ParseManifest(line).StringOr("schema", ""), kTimeseriesSchema);
}

}  // namespace
}  // namespace glb::harness
