// Fuzz tests for the G-line barrier layer against an independent
// closed-form oracle, plus randomized multiplexer workloads.
//
// The oracle re-derives the release cycle of every core from first
// principles (it shares no code with the FSM implementation):
//
//   row r completes at      C_r = max(max_s(t_s + Lh), m_r)
//   vertical completes at   V   = max(max_{r>0}(C_r + Lv), C_0)
//   column-0 cores release at   V + 1
//   all other cores release at  V + 2
//
// where t_s are the row's slave arrival cycles, m_r the master-node
// arrival, and Lh/Lv the arrival-line latencies (ceil(tx/6) under the
// relaxed policy; the release lines have one transmitter each and are
// always 1 cycle). Any divergence between this formula and the
// simulated network is a bug in one of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "gline/barrier_mux.h"
#include "gline/barrier_network.h"
#include "sim/engine.h"

namespace glb::gline {
namespace {

Cycle LineLatency(std::uint32_t transmitters, std::uint32_t max_tx) {
  return transmitters <= max_tx ? 1 : (transmitters + max_tx - 1) / max_tx;
}

struct Oracle {
  std::uint32_t rows, cols, max_tx;

  std::vector<Cycle> ReleaseCycles(const std::vector<Cycle>& arrival) const {
    const Cycle lh = LineLatency(cols - 1, max_tx);
    const Cycle lv = LineLatency(rows - 1, max_tx);
    std::vector<Cycle> row_complete(rows, 0);
    for (std::uint32_t r = 0; r < rows; ++r) {
      Cycle c = arrival[r * cols + 0];  // master-node arrival (Mcnt)
      for (std::uint32_t col = 1; col < cols; ++col) {
        c = std::max(c, arrival[r * cols + col] + lh);
      }
      row_complete[r] = c;
    }
    Cycle v = row_complete[0];
    for (std::uint32_t r = 1; r < rows; ++r) v = std::max(v, row_complete[r] + lv);
    std::vector<Cycle> release(rows * cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t col = 0; col < cols; ++col) {
        // Release lines (MglineV/MglineH) have one transmitter each,
        // so the wave is 1 cycle per stage regardless of mesh width.
        release[r * cols + col] = v + 1 + (col == 0 ? 0 : 1);
      }
    }
    return release;
  }
};

class ArrivalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrivalFuzz, SimulationMatchesClosedForm) {
  Rng rng(GetParam());
  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {1, 1}, {1, 5}, {5, 1}, {2, 2}, {3, 4}, {4, 8}, {7, 7}, {8, 8}};
  for (auto [rows, cols] : shapes) {
    sim::Engine engine;
    StatSet stats;
    BarrierNetwork net(engine, rows, cols, BarrierNetConfig{}, stats);
    const std::uint32_t n = rows * cols;
    const Oracle oracle{rows, cols, BarrierNetConfig{}.max_transmitters};

    Cycle base = 0;
    for (int episode = 0; episode < 8; ++episode) {
      std::vector<Cycle> arrival(n);
      for (CoreId c = 0; c < n; ++c) {
        arrival[c] = base + 1 + rng.NextBelow(60);
      }
      std::vector<Cycle> released(n, kCycleNever);
      for (CoreId c = 0; c < n; ++c) {
        engine.ScheduleAt(arrival[c], [&net, &engine, &released, c]() {
          net.Arrive(0, c, [&engine, &released, c]() {
            released[c] = engine.Now();
          });
        });
      }
      ASSERT_TRUE(engine.RunUntilIdle(1'000'000));
      const auto expected = oracle.ReleaseCycles(arrival);
      for (CoreId c = 0; c < n; ++c) {
        ASSERT_EQ(released[c], expected[c])
            << rows << "x" << cols << " episode " << episode << " core " << c;
      }
      base = *std::max_element(expected.begin(), expected.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrivalFuzz, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Multiplexer fuzz: random masks, more logical barriers than contexts,
// episodes racing each other; every participant must be released
// exactly once per episode and never before all its peers arrived.
// ---------------------------------------------------------------------------

class MuxFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MuxFuzz, RandomLogicalBarrierTraffic) {
  Rng rng(GetParam() * 7919);
  sim::Engine engine;
  StatSet stats;
  BarrierNetConfig cfg;
  cfg.contexts = 2;
  const std::uint32_t rows = 3, cols = 4, n = rows * cols;
  BarrierNetwork net(engine, rows, cols, cfg, stats);
  BarrierMux mux(net, stats);

  constexpr int kLogical = 5;
  constexpr int kEpisodes = 6;
  struct LogicalRun {
    BarrierMux::LogicalId id;
    std::vector<CoreId> members;
    int episode = 0;
    std::uint32_t arrived = 0;   // arrivals in the current episode
    std::uint32_t released = 0;  // releases in the current episode
    bool violated = false;
  };
  std::vector<std::unique_ptr<LogicalRun>> runs;

  for (int l = 0; l < kLogical; ++l) {
    std::vector<bool> mask(n, false);
    auto run = std::make_unique<LogicalRun>();
    while (run->members.empty()) {
      for (CoreId c = 0; c < n; ++c) {
        if (rng.NextBool(0.4)) {
          if (!mask[c]) run->members.push_back(c);
          mask[c] = true;
        }
      }
    }
    run->id = mux.CreateBarrier(mask);
    runs.push_back(std::move(run));
  }

  // Episode driver: schedule all arrivals for a run's current episode;
  // when the last release lands, start the next episode.
  std::function<void(LogicalRun*)> start_episode = [&](LogicalRun* run) {
    run->arrived = 0;
    run->released = 0;
    const Cycle now = engine.Now();
    for (CoreId c : run->members) {
      const Cycle at = now + 1 + rng.NextBelow(40);
      engine.ScheduleAt(at, [&, run, c]() {
        ++run->arrived;
        mux.Arrive(run->id, c, [&, run]() {
          if (run->arrived != run->members.size()) run->violated = true;
          if (++run->released == run->members.size()) {
            if (++run->episode < kEpisodes) start_episode(run);
          }
        });
      });
    }
  };
  for (auto& run : runs) start_episode(run.get());

  ASSERT_TRUE(engine.RunUntilIdle(10'000'000)) << "mux deadlocked";
  for (auto& run : runs) {
    EXPECT_EQ(run->episode, kEpisodes) << "logical " << run->id << " starved";
    EXPECT_FALSE(run->violated) << "logical " << run->id << " released early";
  }
  EXPECT_EQ(net.barriers_completed(),
            static_cast<std::uint64_t>(kLogical) * kEpisodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuxFuzz, ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace glb::gline
