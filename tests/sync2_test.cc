// Second sync-runtime test batch: dissemination barrier properties,
// combining-tree fan-in sweep, cross-mechanism latency ordering, and
// the application workloads' barrier census.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cmp/cmp_system.h"
#include "harness/experiment.h"
#include "sync/dissemination_barrier.h"
#include "sync/sw_barrier.h"
#include "workloads/em3d.h"
#include "workloads/ocean.h"
#include "workloads/synthetic.h"
#include "workloads/unstructured.h"

namespace glb::sync {
namespace {

using cmp::CmpConfig;
using cmp::CmpSystem;
using core::Core;
using core::Task;
using harness::BarrierKind;
using harness::RunExperiment;

// ---------------------------------------------------------------------------
// Dissemination barrier
// ---------------------------------------------------------------------------

TEST(Dissemination, RoundCountIsCeilLog2) {
  CmpSystem sys(CmpConfig::WithCores(4));
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 1).rounds(), 0u);
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 2).rounds(), 1u);
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 3).rounds(), 2u);
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 8).rounds(), 3u);
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 9).rounds(), 4u);
  EXPECT_EQ(DisseminationBarrier(sys.allocator(), 32).rounds(), 5u);
}

// Lap-resistance: the two parity buffers must absorb a one-episode lead
// even when arrival skew alternates direction every episode.
TEST(Dissemination, ManyEpisodesWithAlternatingSkew) {
  CmpSystem sys(CmpConfig::WithCores(8));
  DisseminationBarrier barrier(sys.allocator(), 8);
  std::vector<int> arrived(40, 0);
  bool violated = false;
  auto body = [](Core& c, Barrier* b, std::vector<int>* arr, bool* bad) -> Task {
    for (int e = 0; e < 40; ++e) {
      const auto skew = (e % 2 == 0) ? c.id() * 37u : (7u - c.id()) * 37u;
      co_await c.Compute(1 + skew);
      ++(*arr)[static_cast<std::size_t>(e)];
      co_await b->Wait(c);
      if ((*arr)[static_cast<std::size_t>(e)] != 8) *bad = true;
    }
  };
  ASSERT_TRUE(sys.RunPrograms(
      [&](Core& c, CoreId) { return body(c, &barrier, &arrived, &violated); },
      500'000'000ull));
  EXPECT_FALSE(violated);
}

// Regression: the flag stride was a hardcoded 64 bytes, so any
// allocator with larger lines put two flags (one writer + an unrelated
// spinner) on the same cache line, and smaller lines wasted address
// space. The stride must be exactly the allocator's line size: the
// barrier's whole flag array spans 2 * max(rounds,1) * cores lines.
TEST(Dissemination, FlagStrideFollowsAllocatorLineSize) {
  for (std::uint32_t lb : {32u, 64u, 128u}) {
    mem::AddrAllocator alloc(lb, /*base=*/0x20000);
    const Addr before = alloc.AllocVar();  // one line
    DisseminationBarrier barrier(alloc, 4);  // rounds=2: 2*2*4 = 16 flags
    EXPECT_EQ(barrier.rounds(), 2u);
    const Addr after = alloc.AllocVar();
    EXPECT_EQ(after - before, (1u + 16u) * lb) << "line_bytes=" << lb;
  }
}

// End-to-end at non-default line sizes: the full coherence stack (L1/L2
// geometry, allocator and barrier stride all at 32 or 128 bytes) must
// agree on episode correctness.
TEST(Dissemination, CorrectAtNonDefaultLineBytes) {
  for (std::uint32_t lb : {32u, 128u}) {
    CmpConfig cfg = CmpConfig::WithCores(8);
    cfg.coherence.line_bytes = lb;
    cfg.l1.line_bytes = lb;
    cfg.l2.line_bytes = lb;
    CmpSystem sys(cfg);
    DisseminationBarrier barrier(sys.allocator(), 8);
    std::vector<int> arrived(12, 0);
    bool violated = false;
    auto body = [](Core& c, Barrier* b, std::vector<int>* arr, bool* bad) -> Task {
      for (int e = 0; e < 12; ++e) {
        co_await c.Compute(1 + (c.id() * 31 + static_cast<std::uint32_t>(e)) % 53);
        ++(*arr)[static_cast<std::size_t>(e)];
        co_await b->Wait(c);
        if ((*arr)[static_cast<std::size_t>(e)] != 8) *bad = true;
      }
    };
    ASSERT_TRUE(sys.RunPrograms(
        [&](Core& c, CoreId) { return body(c, &barrier, &arrived, &violated); },
        100'000'000ull))
        << "line_bytes=" << lb;
    EXPECT_FALSE(violated) << "line_bytes=" << lb;
  }
}

// Non-power-of-two core counts exercise the modular partner arithmetic.
TEST(Dissemination, NonPowerOfTwoCoreCounts) {
  for (std::uint32_t n : {3u, 6u, 12u}) {
    CmpSystem sys(CmpConfig::WithCores(n));
    DisseminationBarrier barrier(sys.allocator(), n);
    auto body = [](Core& c, Barrier* b) -> Task {
      for (int e = 0; e < 10; ++e) {
        co_await c.Compute(1 + c.id() * 7);
        co_await b->Wait(c);
      }
    };
    ASSERT_TRUE(sys.RunPrograms([&](Core& c, CoreId) { return body(c, &barrier); },
                                100'000'000ull))
        << n << " cores";
  }
}

// ---------------------------------------------------------------------------
// Combining-tree fan-in sweep
// ---------------------------------------------------------------------------

class TreeFanin : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeFanin, CorrectAcrossEpisodes) {
  const std::uint32_t fanin = GetParam();
  CmpSystem sys(CmpConfig::WithCores(16));
  TreeBarrier barrier(sys.allocator(), 16, fanin);
  std::vector<int> arrived(10, 0);
  bool violated = false;
  auto body = [](Core& c, Barrier* b, std::vector<int>* arr, bool* bad) -> Task {
    for (int e = 0; e < 10; ++e) {
      co_await c.Compute(1 + (c.id() * 13 + static_cast<std::uint32_t>(e)) % 41);
      ++(*arr)[static_cast<std::size_t>(e)];
      co_await b->Wait(c);
      if ((*arr)[static_cast<std::size_t>(e)] != 16) *bad = true;
    }
  };
  ASSERT_TRUE(sys.RunPrograms(
      [&](Core& c, CoreId) { return body(c, &barrier, &arrived, &violated); },
      500'000'000ull));
  EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(Fanins, TreeFanin, ::testing::Values(2u, 3u, 4u, 8u, 16u));

TEST(TreeFanin, NodeCountsByFanin) {
  CmpSystem sys(CmpConfig::WithCores(16));
  EXPECT_EQ(TreeBarrier(sys.allocator(), 16, 2).num_nodes(), 15u);  // 8+4+2+1
  EXPECT_EQ(TreeBarrier(sys.allocator(), 16, 4).num_nodes(), 5u);   // 4+1
  EXPECT_EQ(TreeBarrier(sys.allocator(), 16, 16).num_nodes(), 1u);  // flat
}

// ---------------------------------------------------------------------------
// Cross-mechanism latency ordering (the Figure-5 claim, plus extensions)
// ---------------------------------------------------------------------------

TEST(BarrierOrdering, FullZooAt16Cores) {
  auto run = [](BarrierKind k) {
    return RunExperiment(
        []() { return std::make_unique<workloads::Synthetic>(40); }, k,
        CmpConfig::WithCores(16), 1'000'000'000ull);
  };
  const auto gl = run(BarrierKind::kGL);
  const auto hyb = run(BarrierKind::kHYB);
  const auto dis = run(BarrierKind::kDIS);
  const auto dsw = run(BarrierKind::kDSW);
  ASSERT_TRUE(gl.completed && hyb.completed && dis.completed && dsw.completed);
  EXPECT_LT(gl.cycles, hyb.cycles);
  EXPECT_LT(hyb.cycles, dis.cycles);
  EXPECT_LT(dis.cycles, dsw.cycles)
      << "dissemination should beat the combining tree";
  EXPECT_EQ(gl.total_msgs(), 0u);
  EXPECT_GT(dis.total_msgs(), 0u);
}

// ---------------------------------------------------------------------------
// Application barrier census (Table-2 structure for the apps)
// ---------------------------------------------------------------------------

TEST(WorkloadCensusApps, OceanBarriersPerSweep) {
  workloads::Ocean::Config cfg;
  cfg.grid = 20;
  cfg.iterations = 4;
  const auto m = RunExperiment(
      [cfg]() { return std::make_unique<workloads::Ocean>(cfg); },
      BarrierKind::kGL, CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
  // 1 init + 3 per sweep (red, black, post-reduction).
  EXPECT_EQ(m.barriers, 1u + 3u * 4u);
}

TEST(WorkloadCensusApps, UnstructuredBarriersPerStep) {
  workloads::Unstructured::Config cfg;
  cfg.nodes = 128;
  cfg.edges = 512;
  cfg.timesteps = 3;
  const auto m = RunExperiment(
      [cfg]() { return std::make_unique<workloads::Unstructured>(cfg); },
      BarrierKind::kGL, CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
  // 1 init + 2 per time step.
  EXPECT_EQ(m.barriers, 1u + 2u * 3u);
}

TEST(WorkloadCensusApps, Em3dBarriersPerStep) {
  workloads::Em3d::Config cfg;
  cfg.nodes = 256;
  cfg.timesteps = 5;
  const auto m = RunExperiment(
      [cfg]() { return std::make_unique<workloads::Em3d>(cfg); },
      BarrierKind::kGL, CmpConfig::WithCores(4), 1'000'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
  // 1 init + 2 per time step (E-phase, H-phase).
  EXPECT_EQ(m.barriers, 1u + 2u * 5u);
}

}  // namespace
}  // namespace glb::sync
