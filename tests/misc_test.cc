// Coverage for the small substrate pieces: GLB_CHECK, logging,
// protocol classification tables, report helpers, and G-line cancel
// semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "cmp/cmp_system.h"
#include "coherence/protocol.h"
#include "common/check.h"
#include "common/log.h"
#include "gline/gline.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "noc/mesh.h"
#include "power/energy_model.h"
#include "sim/engine.h"

namespace glb {
namespace {

// ---------------------------------------------------------------------------
// GLB_CHECK
// ---------------------------------------------------------------------------

TEST(CheckDeath, FailureReportsExpressionAndMessage) {
  EXPECT_DEATH([]() { GLB_CHECK(1 == 2) << "ctx " << 42; }(),
               "1 == 2.*ctx 42");
}

TEST(Check, PassingConditionHasNoSideEffects) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  GLB_CHECK(true) << count();  // stream must not be evaluated
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeath, UnreachableAborts) {
  EXPECT_DEATH([]() { GLB_UNREACHABLE("should not happen"); }(),
               "should not happen");
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(Log, LevelsGateEmission) {
  Logger::SetLevel(LogLevel::kOff);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kWarn));
  Logger::SetLevel(LogLevel::kWarn);
  EXPECT_TRUE(Logger::Enabled(LogLevel::kWarn));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kInfo));
  Logger::SetLevel(LogLevel::kTrace);
  EXPECT_TRUE(Logger::Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kTrace));
  Logger::SetLevel(LogLevel::kOff);
}

TEST(Log, TraceMacroIsCheapWhenDisabled) {
  Logger::SetLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  GLB_TRACE(0, "test", expensive());
  EXPECT_EQ(evaluations, 0) << "stream must not be built when disabled";
}

// ---------------------------------------------------------------------------
// Protocol classification tables
// ---------------------------------------------------------------------------

TEST(Protocol, TrafficClassesMatchFigure7) {
  using coherence::MsgType;
  using coherence::TrafficOf;
  using noc::TrafficClass;
  EXPECT_EQ(TrafficOf(MsgType::kGetS), TrafficClass::kRequest);
  EXPECT_EQ(TrafficOf(MsgType::kGetX), TrafficClass::kRequest);
  EXPECT_EQ(TrafficOf(MsgType::kData), TrafficClass::kReply);
  for (auto t : {MsgType::kFwdGetS, MsgType::kFwdGetX, MsgType::kInv,
                 MsgType::kInvAck, MsgType::kDataWB, MsgType::kPutM,
                 MsgType::kPutE, MsgType::kPutAck}) {
    EXPECT_EQ(TrafficOf(t), TrafficClass::kCoherence) << coherence::ToString(t);
  }
}

TEST(Protocol, VirtualNetworksSeparateClasses) {
  using coherence::MsgType;
  using coherence::VNetOf;
  using noc::VNet;
  // Requests, forwards and responses must use three distinct VNs.
  EXPECT_EQ(VNetOf(MsgType::kGetS), VNet::kRequest);
  EXPECT_EQ(VNetOf(MsgType::kPutM), VNet::kRequest);
  EXPECT_EQ(VNetOf(MsgType::kFwdGetX), VNet::kForward);
  EXPECT_EQ(VNetOf(MsgType::kInv), VNet::kForward);
  EXPECT_EQ(VNetOf(MsgType::kData), VNet::kResponse);
  EXPECT_EQ(VNetOf(MsgType::kInvAck), VNet::kResponse);
  EXPECT_EQ(VNetOf(MsgType::kPutAck), VNet::kResponse);
}

TEST(Protocol, MessageSizing) {
  coherence::CoherenceConfig cfg;
  EXPECT_EQ(cfg.data_bytes(), cfg.control_bytes + cfg.line_bytes);
  // The Table-1 design point: a data message is exactly one 75B flit.
  EXPECT_EQ(cfg.data_bytes(), 75u);
}

// ---------------------------------------------------------------------------
// Report helpers
// ---------------------------------------------------------------------------

TEST(Report, PrintMetricsMentionsFailures) {
  harness::RunMetrics m;
  m.workload = "W";
  m.barrier = "GL";
  m.cores = 4;
  m.cycles = 100;
  m.barriers = 10;
  m.barrier_period = 10.0;
  std::ostringstream ok;
  harness::PrintMetrics(ok, m);
  EXPECT_EQ(ok.str().find("FAILED"), std::string::npos);
  m.validation = "boom";
  std::ostringstream bad;
  harness::PrintMetrics(bad, m);
  EXPECT_NE(bad.str().find("VALIDATION FAILED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// G-line cancel semantics
// ---------------------------------------------------------------------------

TEST(GLineCancel, PendingBatchesAreDropped) {
  sim::Engine e;
  gline::GLine line(e, "t", 3, 6, gline::TxPolicy::kReject, nullptr);
  int delivered = 0;
  line.AddReceiver([&](std::uint32_t) { ++delivered; });
  e.ScheduleAt(1, [&]() {
    line.Assert();
    EXPECT_TRUE(line.has_pending());
    line.CancelPending();
    EXPECT_FALSE(line.has_pending());
  });
  e.RunUntilIdle();
  EXPECT_EQ(delivered, 0) << "cancelled batch must not deliver";
}

TEST(GLineCancel, LineIsUsableAfterCancel) {
  sim::Engine e;
  gline::GLine line(e, "t", 3, 6, gline::TxPolicy::kReject, nullptr);
  std::uint32_t got = 0;
  line.AddReceiver([&](std::uint32_t c) { got = c; });
  e.ScheduleAt(1, [&]() {
    line.Assert();
    line.CancelPending();
  });
  e.ScheduleAt(5, [&]() {
    line.Assert();
    line.Assert();
  });
  e.RunUntilIdle();
  EXPECT_EQ(got, 2u) << "post-cancel assertions deliver normally";
}


// --- appended by staging: narrow-link arbitration, power printing,
// --- directory diagnostics.


TEST(MeshNarrowLinks, ControlOvertakesMultiFlitData) {
  // With 16-byte links a 75B data packet is 5 flits; a 11B control
  // packet on another virtual network can overtake it between the same
  // endpoints — the overtake the coherence protocol must tolerate.
  sim::Engine engine;
  StatSet stats;
  noc::MeshConfig mc;
  mc.rows = 1;
  mc.cols = 4;
  mc.link_bytes = 16;
  noc::Mesh mesh(engine, mc, stats);
  std::vector<int> order;
  auto send = [&](noc::VNet vn, std::uint32_t bytes, int tag) {
    noc::Packet p;
    p.src = 0;
    p.dst = 3;
    p.vnet = vn;
    p.traffic = noc::TrafficClass::kReply;
    p.bytes = bytes;
    p.deliver = [&order, tag]() { order.push_back(tag); };
    mesh.Send(std::move(p));
  };
  // Two back-to-back 5-flit data packets, then a 1-flit control packet
  // on a different VN one cycle later.
  engine.ScheduleAt(0, [&]() {
    send(noc::VNet::kResponse, 75, 1);
    send(noc::VNet::kResponse, 75, 2);
  });
  engine.ScheduleAt(1, [&]() { send(noc::VNet::kForward, 11, 3); });
  engine.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3) << "the control flit should slip between data packets";
  EXPECT_EQ(order[2], 2);
}

TEST(PowerPrint, HumanReadableSummary) {
  power::EnergyReport r;
  r.noc_pj = 4000;
  r.l1_pj = 1000;
  r.dram_pj = 5000;
  std::ostringstream os;
  power::Print(os, r);
  const std::string s = os.str();
  EXPECT_NE(s.find("total 10.0 nJ"), std::string::npos) << s;
  EXPECT_NE(s.find("noc 4.0"), std::string::npos);
  EXPECT_NE(s.find("40%"), std::string::npos);
}

TEST(DirDiagnostics, DumpShowsOpenTransaction) {
  // Open a transaction by making a request and freezing mid-flight:
  // run only up to the home's processing window.
  cmp::CmpSystem sys(cmp::CmpConfig::WithCores(4));
  sys.fabric().l1(1).Load(0x5000, [](Word) {});
  // Advance a little: enough for the GetS to open at home, not enough
  // for the DRAM fill (400 cycles) to complete.
  sys.engine().RunUntil(50);
  const CoreId home = sys.fabric().HomeOf(0x5000);
  ASSERT_TRUE(sys.fabric().home(home).LineBusy(0x5000));
  std::ostringstream os;
  sys.fabric().home(home).DumpTransactions(os);
  EXPECT_NE(os.str().find("GetS"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("req=1"), std::string::npos) << os.str();
  sys.engine().RunUntilIdle();  // drain cleanly
}


}  // namespace
}  // namespace glb
