// Cross-module integration tests: whole-machine determinism, the
// post-run drain, multi-core data-flow chains, degenerate mesh shapes,
// paper-config sanity, and in-order issue enforcement.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "cmp/cmp_system.h"
#include "coherence/checker.h"
#include "harness/experiment.h"
#include "workloads/em3d.h"
#include "workloads/livermore.h"
#include "workloads/synthetic.h"

namespace glb {
namespace {

using cmp::CmpConfig;
using cmp::CmpSystem;
using core::Core;
using core::Task;
using harness::BarrierKind;
using harness::RunExperiment;

// ---------------------------------------------------------------------------
// Determinism: the whole machine is bit-reproducible.
// ---------------------------------------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalMetrics) {
  auto run = []() {
    return RunExperiment(
        []() {
          workloads::Em3d::Config cfg;
          cfg.nodes = 256;
          cfg.timesteps = 3;
          return std::make_unique<workloads::Em3d>(cfg);
        },
        BarrierKind::kDSW, CmpConfig::WithCores(16), 1'000'000'000ull);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_msgs(), b.total_msgs());
  EXPECT_EQ(a.msgs_request, b.msgs_request);
  EXPECT_EQ(a.msgs_coherence, b.msgs_coherence);
  EXPECT_EQ(a.host_events, b.host_events);
  for (int c = 0; c < core::kNumTimeCats; ++c) {
    EXPECT_EQ(a.breakdown.cycles[static_cast<std::size_t>(c)],
              b.breakdown.cycles[static_cast<std::size_t>(c)]);
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentGraphTiming) {
  auto run = [](std::uint64_t seed) {
    workloads::Em3d::Config cfg;
    cfg.nodes = 256;
    cfg.timesteps = 3;
    cfg.seed = seed;
    return RunExperiment([cfg]() { return std::make_unique<workloads::Em3d>(cfg); },
                         BarrierKind::kDSW, CmpConfig::WithCores(16),
                         1'000'000'000ull);
  };
  const auto a = run(1);
  const auto b = run(2);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.validation, "");
  EXPECT_EQ(b.validation, "");
  EXPECT_NE(a.cycles, b.cycles) << "different graphs should time differently";
}

// ---------------------------------------------------------------------------
// Post-run drain
// ---------------------------------------------------------------------------

TEST(Drain, DirtyLinesReachBackingAfterRun) {
  CmpSystem sys(CmpConfig::WithCores(4));
  const Addr a = sys.allocator().AllocVar();
  auto body = [](Core& c, Addr addr) -> Task { co_await c.Store(addr, 777); };
  sys.core(2).Run(body(sys.core(2), a));
  // Other cores run no program; RunPrograms requires all, so drive the
  // engine directly and drain manually.
  ASSERT_TRUE(sys.engine().RunUntilIdle(1'000'000));
  EXPECT_EQ(sys.memory().ReadWord(a), 0u) << "still dirty in the L1";
  sys.fabric().DrainToBacking();
  EXPECT_EQ(sys.memory().ReadWord(a), 777u);
}

TEST(Drain, DrainPreservesCoherence) {
  CmpSystem sys(CmpConfig::WithCores(4));
  const Addr a = sys.allocator().AllocVar();
  auto writer = [](Core& c, Addr addr) -> Task {
    for (Word i = 1; i <= 10; ++i) co_await c.Store(addr, i);
  };
  auto reader = [](Core& c, Addr addr) -> Task {
    for (int i = 0; i < 10; ++i) (void)co_await c.Load(addr);
  };
  sys.core(0).Run(writer(sys.core(0), a));
  sys.core(1).Run(reader(sys.core(1), a));
  ASSERT_TRUE(sys.engine().RunUntilIdle(10'000'000));
  sys.fabric().DrainToBacking();
  EXPECT_EQ(sys.memory().ReadWord(a), 10u);
  coherence::CoherenceChecker checker(sys.fabric());
  EXPECT_TRUE(checker.Check().empty());
}

// ---------------------------------------------------------------------------
// Multi-core dataflow chain through the protocol
// ---------------------------------------------------------------------------

TEST(DataFlow, TokenRingThroughCoherentMemory) {
  // Core i waits for token value i at slot[i], then writes i+1 to
  // slot[(i+1) % n]: a full ring of producer/consumer handoffs.
  constexpr std::uint32_t n = 8;
  CmpSystem sys(CmpConfig::WithCores(n));
  std::vector<Addr> slot;
  for (std::uint32_t i = 0; i < n; ++i) slot.push_back(sys.allocator().AllocVar());
  constexpr int kRounds = 5;
  auto body = [](Core& c, const std::vector<Addr>* slots, std::uint32_t ncores) -> Task {
    for (int round = 0; round < kRounds; ++round) {
      const Word expect = 1 + static_cast<Word>(round) * ncores + c.id();
      while (true) {
        const Word v = co_await c.Load((*slots)[c.id()]);
        if (v == expect) break;
      }
      co_await c.Store((*slots)[c.id()], 0);  // consume
      const Word next = expect + 1;
      co_await c.Store((*slots)[(c.id() + 1) % ncores], next);
    }
  };
  // Kick off the token.
  sys.memory().WriteWord(slot[0], 1);
  ASSERT_TRUE(sys.RunPrograms([&](Core& c, CoreId) { return body(c, &slot, n); },
                              100'000'000));
  // After kRounds laps, the token value has advanced by n*kRounds.
  sys.fabric().DrainToBacking();
  EXPECT_EQ(sys.memory().ReadWord(slot[0]), 1 + n * kRounds);
}

// ---------------------------------------------------------------------------
// Degenerate machine shapes
// ---------------------------------------------------------------------------

class ShapeSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShapeSweep, SyntheticRunsAndValidates) {
  const auto [rows, cols] = GetParam();
  CmpConfig cfg;
  cfg.rows = static_cast<std::uint32_t>(rows);
  cfg.cols = static_cast<std::uint32_t>(cols);
  const auto m = RunExperiment(
      []() { return std::make_unique<workloads::Synthetic>(10); },
      BarrierKind::kGL, cfg, 100'000'000ull);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.validation, "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 8},
                                           std::pair{8, 1}, std::pair{2, 3},
                                           std::pair{3, 2}, std::pair{5, 5},
                                           std::pair{7, 7}));

// ---------------------------------------------------------------------------
// Table-1 paper config sanity
// ---------------------------------------------------------------------------

TEST(PaperConfig, Table1MachineProperties) {
  const auto cfg = CmpConfig::Table1();
  EXPECT_EQ(cfg.num_cores(), 32u);
  EXPECT_EQ(cfg.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l1.ways, 4u);
  EXPECT_EQ(cfg.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(cfg.coherence.dram_latency, 400u);
  EXPECT_EQ(cfg.coherence.line_bytes, 64u);
  EXPECT_EQ(cfg.noc.link_bytes, 75u);
  CmpSystem sys(cfg);
  // 2 x (rows+1) lines per context: 4 rows -> 10.
  EXPECT_EQ(sys.gline().total_lines(), 10u);
  // A 64B-data message fits one 75B flit (the Table-1 design point).
  EXPECT_EQ(sys.mesh().FlitsOf(cfg.coherence.data_bytes()), 1u);
}

TEST(PaperConfig, WithCoresFactorsSquarish) {
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto cfg = CmpConfig::WithCores(n);
    EXPECT_EQ(cfg.num_cores(), n);
    EXPECT_LE(cfg.rows, cfg.cols);
  }
  EXPECT_EQ(CmpConfig::WithCores(32).rows, 4u);
  EXPECT_EQ(CmpConfig::WithCores(16).rows, 4u);
  EXPECT_EQ(CmpConfig::WithCores(8).rows, 2u);
}

// ---------------------------------------------------------------------------
// In-order issue enforcement
// ---------------------------------------------------------------------------

TEST(InOrderDeath, OverlappingMemoryOpsAbort) {
  CmpSystem sys(CmpConfig::WithCores(4));
  auto& l1 = sys.fabric().l1(0);
  l1.Load(0x1000, [](Word) {});
  EXPECT_DEATH(l1.Load(0x2000, [](Word) {}), "second outstanding op");
}

// ---------------------------------------------------------------------------
// Stats plumbing end-to-end
// ---------------------------------------------------------------------------

TEST(StatsIntegration, CsvDumpContainsRunCounters) {
  CmpSystem sys(CmpConfig::WithCores(4));
  auto body = [](Core& c) -> Task {
    co_await c.Store(0x4000, 1);
    co_await c.GlBarrier();
  };
  ASSERT_TRUE(sys.RunPrograms([&](Core& c, CoreId) { return body(c); }));
  std::ostringstream os;
  sys.stats().PrintCsv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("core.stores"), std::string::npos);
  EXPECT_NE(s.find("gl.barriers_completed"), std::string::npos);
  EXPECT_NE(s.find("noc.msg_latency"), std::string::npos);
}

}  // namespace
}  // namespace glb
