// JSON writer/parser tests: escaping, streaming writer structure,
// parser acceptance/rejection, and writer->parser round-trips (the
// property the trace and manifest emitters rely on).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "common/json.h"

namespace glb::json {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(Escape("hello world"), "hello world");
  EXPECT_EQ(Escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashAndControls) {
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, CompactObject) {
  std::ostringstream os;
  Writer w(os);
  w.BeginObject();
  w.Field("s", "x");
  w.Field("u", std::uint64_t{42});
  w.Field("i", std::int64_t{-7});
  w.Field("d", 1.5);
  w.Field("b", true);
  w.Key("n");
  w.Null();
  w.EndObject();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"s":"x","u":42,"i":-7,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriter, ArraysAndNesting) {
  std::ostringstream os;
  Writer w(os);
  w.BeginArray();
  w.Uint(1);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  w.String("z");
  w.EndArray();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"([1,{"a":[]},"z"])");
}

TEST(JsonWriter, PrettyIndents) {
  std::ostringstream os;
  Writer w(os, /*pretty=*/true);
  w.BeginObject();
  w.Field("a", std::uint64_t{1});
  w.EndObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  Writer w(os);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  std::ostringstream os;
  Writer w(os);
  w.BeginArray();
  w.Double(0.1);
  w.Double(3.0);
  w.EndArray();
  auto v = Parse(os.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->arr[0].num_v, 0.1);
  EXPECT_DOUBLE_EQ(v->arr[1].num_v, 3.0);
}

TEST(JsonWriter, RawValueSplice) {
  std::ostringstream os;
  Writer w(os);
  w.BeginObject();
  w.Field("a", std::uint64_t{1});
  w.Key("raw");
  w.BeginRawValue();
  os << R"({"x":2})";
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"a":1,"raw":{"x":2}})");
  auto v = Parse(os.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("raw")->NumberOr("x", 0.0), 2.0);
}

TEST(JsonParse, Literals) {
  EXPECT_TRUE(Parse("null")->IsNull());
  EXPECT_EQ(Parse("true")->bool_v, true);
  EXPECT_EQ(Parse("false")->bool_v, false);
  EXPECT_DOUBLE_EQ(Parse("-12.5e2")->num_v, -1250.0);
  EXPECT_EQ(Parse(R"("hi")")->str_v, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\nd")")->str_v, "a\"b\\c\nd");
  // \u escapes decode to UTF-8 (1-, 2- and 3-byte sequences).
  EXPECT_EQ(Parse(R"("\u0041")")->str_v, "A");
  EXPECT_EQ(Parse(R"("\u00e9")")->str_v, "\xc3\xa9");
  EXPECT_EQ(Parse(R"("\u20ac")")->str_v, "\xe2\x82\xac");
}

TEST(JsonParse, ObjectsPreserveOrderAndDuplicates) {
  auto v = Parse(R"({"b":1,"a":2,"b":3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->obj.size(), 3u);
  EXPECT_EQ(v->obj[0].first, "b");
  EXPECT_EQ(v->obj[1].first, "a");
  // Find returns the first duplicate.
  EXPECT_DOUBLE_EQ(v->Find("b")->num_v, 1.0);
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Parse("", &err).has_value());
  EXPECT_FALSE(Parse("{", &err).has_value());
  EXPECT_FALSE(Parse("[1,]", &err).has_value());
  EXPECT_FALSE(Parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(Parse("tru", &err).has_value());
  EXPECT_FALSE(Parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RejectsTrailingGarbage) {
  std::string err;
  EXPECT_FALSE(Parse("{} x", &err).has_value());
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).has_value());
}

TEST(JsonParse, HelpersOnMissingKeys) {
  auto v = Parse(R"({"n":4,"s":"x"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v->NumberOr("n", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(v->NumberOr("missing", -1.0), -1.0);
  EXPECT_EQ(v->StringOr("s", "d"), "x");
  EXPECT_EQ(v->StringOr("missing", "d"), "d");
}

TEST(JsonRoundTrip, WriterOutputParses) {
  std::ostringstream os;
  Writer w(os, /*pretty=*/true);
  w.BeginObject();
  w.Key("list");
  w.BeginArray();
  for (std::uint64_t i = 0; i < 5; ++i) w.Uint(i);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Field("name", "g-line \"barrier\"\n");
  w.Field("ratio", 0.25);
  w.EndObject();
  w.EndObject();
  ASSERT_TRUE(w.complete());

  auto v = Parse(os.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->Find("list"), nullptr);
  EXPECT_EQ(v->Find("list")->arr.size(), 5u);
  EXPECT_EQ(v->Find("nested")->StringOr("name", ""), "g-line \"barrier\"\n");
  EXPECT_DOUBLE_EQ(v->Find("nested")->NumberOr("ratio", 0.0), 0.25);
}

}  // namespace
}  // namespace glb::json
