// Fault-injection fuzz for the self-healing barrier network.
//
// Companion to tests/gline_fuzz_test.cc: instead of checking exact
// release cycles against the closed-form oracle (meaningless under
// faults), this drives randomized fault plans over random meshes,
// participation masks and contexts, and asserts the resilience
// invariant from barrier_network.h:
//
//   every episode completes — cleanly, after hardware retries, or
//   degraded through the software fallback — the simulation never
//   hangs, and no core is ever released before every participant of
//   its episode arrived.
//
// Plans are drawn per seed from a range that spans "occasional glitch"
// (retry path) to "wire is toast" (degrade path), so both recovery
// regimes are exercised every run of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "fault/fault_injector.h"
#include "fault/fault_model.h"
#include "gline/barrier_network.h"
#include "sim/engine.h"

namespace glb::gline {
namespace {

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, EpisodesAlwaysCompleteAndNeverReleaseEarly) {
  Rng rng(GetParam() * 0x9E3779B9u);

  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {2, 2}, {1, 5}, {3, 4}, {4, 4}, {4, 8}};
  const auto [rows, cols] = shapes[rng.NextBelow(std::size(shapes))];
  const std::uint32_t n = rows * cols;

  sim::Engine engine;
  StatSet stats;
  BarrierNetConfig cfg;
  cfg.contexts = 1 + static_cast<std::uint32_t>(rng.NextBool(0.5));
  // Watchdog comfortably above the worst-case arrival skew (60) plus the
  // longest injected freeze, so a fault-free episode never times out.
  cfg.watchdog_timeout = 400;
  cfg.max_retries = static_cast<std::uint32_t>(rng.NextBelow(4));
  BarrierNetwork net(engine, rows, cols, cfg, stats);

  fault::FaultPlan plan;
  plan.seed = GetParam();
  // 0 .. 0.3 per rate: low end exercises clean runs and single retries,
  // high end reliably exhausts the retry budget and degrades.
  plan.gline_drop_rate = rng.NextBool(0.7) ? rng.NextDouble() * 0.3 : 0.0;
  plan.gline_dup_rate = rng.NextBool(0.4) ? rng.NextDouble() * 0.2 : 0.0;
  plan.csma_corrupt_rate = rng.NextBool(0.4) ? rng.NextDouble() * 0.2 : 0.0;
  plan.core_freeze_rate = rng.NextBool(0.3) ? rng.NextDouble() * 0.1 : 0.0;
  plan.core_freeze_cycles = 1 + rng.NextBelow(200);
  fault::FaultInjector inj(engine, plan, stats);
  inj.Arm(net);

  constexpr int kEpisodes = 10;
  struct CtxRun {
    std::uint32_t ctx = 0;
    std::vector<CoreId> members;
    int episode = 0;
    std::uint32_t arrived = 0;   // bar_reg writes in the current episode
    std::uint32_t released = 0;  // releases in the current episode
    bool early_release = false;
  };
  std::vector<std::unique_ptr<CtxRun>> runs;

  for (std::uint32_t ctx = 0; ctx < cfg.contexts; ++ctx) {
    auto run = std::make_unique<CtxRun>();
    run->ctx = ctx;
    if (rng.NextBool(0.5)) {
      // Random non-empty participation mask (partial-barrier extension).
      std::vector<bool> mask(n, false);
      while (run->members.empty()) {
        for (CoreId c = 0; c < n; ++c) {
          if (rng.NextBool(0.6) && !mask[c]) {
            mask[c] = true;
            run->members.push_back(c);
          }
        }
      }
      net.SetParticipants(ctx, mask);
    } else {
      for (CoreId c = 0; c < n; ++c) run->members.push_back(c);
    }
    runs.push_back(std::move(run));
  }

  // Sequential episode driver per context: the next episode starts only
  // after every member of the previous one was released.
  std::function<void(CtxRun*)> start_episode = [&](CtxRun* run) {
    run->arrived = 0;
    run->released = 0;
    const Cycle now = engine.Now();
    for (CoreId c : run->members) {
      const Cycle at = now + 1 + rng.NextBelow(60);
      engine.ScheduleAt(at, [&, run, c]() {
        ++run->arrived;
        net.Arrive(run->ctx, c, [&, run]() {
          // The invariant under ANY fault plan: a release implies every
          // participant already wrote bar_reg this episode.
          if (run->arrived != run->members.size()) run->early_release = true;
          if (++run->released == run->members.size()) {
            if (++run->episode < kEpisodes) start_episode(run);
          }
        });
      });
    }
  };
  for (auto& run : runs) start_episode(run.get());

  ASSERT_TRUE(engine.RunUntilIdle(50'000'000))
      << "barrier network hung under fault plan seed " << GetParam() << " ("
      << rows << "x" << cols << ", drop=" << plan.gline_drop_rate
      << " dup=" << plan.gline_dup_rate << " csma=" << plan.csma_corrupt_rate
      << " freeze=" << plan.core_freeze_rate << ")";
  for (auto& run : runs) {
    EXPECT_EQ(run->episode, kEpisodes)
        << "ctx " << run->ctx << " starved (seed " << GetParam() << ")";
    EXPECT_FALSE(run->early_release)
        << "ctx " << run->ctx << " released a core early (seed " << GetParam()
        << ")";
  }
  // Every episode was accounted for, clean or degraded.
  EXPECT_EQ(net.barriers_completed(),
            static_cast<std::uint64_t>(cfg.contexts) * kEpisodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range<std::uint64_t>(1, 25));

// A fault-free plan through the armed hooks must behave exactly like the
// unarmed network: same release cycles, no recovery activity.
TEST(FaultFuzzBaseline, ArmedButQuietPlanIsInert) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    sim::Engine e_ref, e_inj;
    StatSet s_ref, s_inj;
    BarrierNetConfig cfg;
    cfg.watchdog_timeout = 1000;
    BarrierNetwork ref(e_ref, 3, 4, cfg, s_ref);
    BarrierNetwork hooked(e_inj, 3, 4, cfg, s_inj);
    fault::FaultPlan quiet;  // all rates zero, no script
    fault::FaultInjector inj(e_inj, quiet, s_inj);
    inj.Arm(hooked);

    std::vector<Cycle> arrival(12);
    for (auto& a : arrival) a = 1 + rng.NextBelow(50);
    auto drive = [&](sim::Engine& e, BarrierNetwork& net) {
      std::vector<Cycle> released(12, kCycleNever);
      for (CoreId c = 0; c < 12; ++c) {
        e.ScheduleAt(arrival[c], [&, c]() {
          net.Arrive(0, c, [&, c]() { released[c] = e.Now(); });
        });
      }
      EXPECT_TRUE(e.RunUntilIdle(1'000'000));
      return released;
    };
    EXPECT_EQ(drive(e_ref, ref), drive(e_inj, hooked));
    EXPECT_EQ(s_inj.CounterValue("fault.injected"), 0u);
    EXPECT_EQ(s_inj.CounterValue("gl.timeouts"), 0u);
  }
}

}  // namespace
}  // namespace glb::gline
