// Fault-injection fuzz for the self-healing barrier network.
//
// Companion to tests/gline_fuzz_test.cc: instead of checking exact
// release cycles against the closed-form oracle (meaningless under
// faults), this drives randomized fault plans over random meshes,
// participation masks and contexts, and asserts the resilience
// invariant from barrier_network.h:
//
//   every episode completes — cleanly, after hardware retries, or
//   degraded through the software fallback — the simulation never
//   hangs, and no core is ever released before every participant of
//   its episode arrived.
//
// Plans are drawn per seed from a range that spans "occasional glitch"
// (retry path) to "wire is toast" (degrade path), so both recovery
// regimes are exercised every run of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "cmp/cmp_system.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fault/fault_injector.h"
#include "fault/fault_model.h"
#include "gline/barrier_network.h"
#include "gline/hierarchy.h"
#include "harness/experiment.h"
#include "harness/manifest.h"
#include "sim/engine.h"
#include "workloads/synthetic.h"

namespace glb::gline {
namespace {

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, EpisodesAlwaysCompleteAndNeverReleaseEarly) {
  Rng rng(GetParam() * 0x9E3779B9u);

  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {2, 2}, {1, 5}, {3, 4}, {4, 4}, {4, 8}};
  const auto [rows, cols] = shapes[rng.NextBelow(std::size(shapes))];
  const std::uint32_t n = rows * cols;

  sim::Engine engine;
  StatSet stats;
  BarrierNetConfig cfg;
  cfg.contexts = 1 + static_cast<std::uint32_t>(rng.NextBool(0.5));
  // Watchdog comfortably above the worst-case arrival skew (60) plus the
  // longest injected freeze, so a fault-free episode never times out.
  cfg.watchdog_timeout = 400;
  cfg.max_retries = static_cast<std::uint32_t>(rng.NextBelow(4));
  BarrierNetwork net(engine, rows, cols, cfg, stats);

  fault::FaultPlan plan;
  plan.seed = GetParam();
  // 0 .. 0.3 per rate: low end exercises clean runs and single retries,
  // high end reliably exhausts the retry budget and degrades.
  plan.gline_drop_rate = rng.NextBool(0.7) ? rng.NextDouble() * 0.3 : 0.0;
  plan.gline_dup_rate = rng.NextBool(0.4) ? rng.NextDouble() * 0.2 : 0.0;
  plan.csma_corrupt_rate = rng.NextBool(0.4) ? rng.NextDouble() * 0.2 : 0.0;
  plan.core_freeze_rate = rng.NextBool(0.3) ? rng.NextDouble() * 0.1 : 0.0;
  plan.core_freeze_cycles = 1 + rng.NextBelow(200);
  fault::FaultInjector inj(engine, plan, stats);
  inj.Arm(net);

  constexpr int kEpisodes = 10;
  struct CtxRun {
    std::uint32_t ctx = 0;
    std::vector<CoreId> members;
    int episode = 0;
    std::uint32_t arrived = 0;   // bar_reg writes in the current episode
    std::uint32_t released = 0;  // releases in the current episode
    bool early_release = false;
  };
  std::vector<std::unique_ptr<CtxRun>> runs;

  for (std::uint32_t ctx = 0; ctx < cfg.contexts; ++ctx) {
    auto run = std::make_unique<CtxRun>();
    run->ctx = ctx;
    if (rng.NextBool(0.5)) {
      // Random non-empty participation mask (partial-barrier extension).
      std::vector<bool> mask(n, false);
      while (run->members.empty()) {
        for (CoreId c = 0; c < n; ++c) {
          if (rng.NextBool(0.6) && !mask[c]) {
            mask[c] = true;
            run->members.push_back(c);
          }
        }
      }
      net.SetParticipants(ctx, mask);
    } else {
      for (CoreId c = 0; c < n; ++c) run->members.push_back(c);
    }
    runs.push_back(std::move(run));
  }

  // Sequential episode driver per context: the next episode starts only
  // after every member of the previous one was released.
  std::function<void(CtxRun*)> start_episode = [&](CtxRun* run) {
    run->arrived = 0;
    run->released = 0;
    const Cycle now = engine.Now();
    for (CoreId c : run->members) {
      const Cycle at = now + 1 + rng.NextBelow(60);
      engine.ScheduleAt(at, [&, run, c]() {
        ++run->arrived;
        net.Arrive(run->ctx, c, [&, run]() {
          // The invariant under ANY fault plan: a release implies every
          // participant already wrote bar_reg this episode.
          if (run->arrived != run->members.size()) run->early_release = true;
          if (++run->released == run->members.size()) {
            if (++run->episode < kEpisodes) start_episode(run);
          }
        });
      });
    }
  };
  for (auto& run : runs) start_episode(run.get());

  ASSERT_TRUE(engine.RunUntilIdle(50'000'000))
      << "barrier network hung under fault plan seed " << GetParam() << " ("
      << rows << "x" << cols << ", drop=" << plan.gline_drop_rate
      << " dup=" << plan.gline_dup_rate << " csma=" << plan.csma_corrupt_rate
      << " freeze=" << plan.core_freeze_rate << ")";
  for (auto& run : runs) {
    EXPECT_EQ(run->episode, kEpisodes)
        << "ctx " << run->ctx << " starved (seed " << GetParam() << ")";
    EXPECT_FALSE(run->early_release)
        << "ctx " << run->ctx << " released a core early (seed " << GetParam()
        << ")";
  }
  // Every episode was accounted for, clean or degraded.
  EXPECT_EQ(net.barriers_completed(),
            static_cast<std::uint64_t>(cfg.contexts) * kEpisodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range<std::uint64_t>(1, 25));

// A fault-free plan through the armed hooks must behave exactly like the
// unarmed network: same release cycles, no recovery activity.
TEST(FaultFuzzBaseline, ArmedButQuietPlanIsInert) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    sim::Engine e_ref, e_inj;
    StatSet s_ref, s_inj;
    BarrierNetConfig cfg;
    cfg.watchdog_timeout = 1000;
    BarrierNetwork ref(e_ref, 3, 4, cfg, s_ref);
    BarrierNetwork hooked(e_inj, 3, 4, cfg, s_inj);
    fault::FaultPlan quiet;  // all rates zero, no script
    fault::FaultInjector inj(e_inj, quiet, s_inj);
    inj.Arm(hooked);

    std::vector<Cycle> arrival(12);
    for (auto& a : arrival) a = 1 + rng.NextBelow(50);
    auto drive = [&](sim::Engine& e, BarrierNetwork& net) {
      std::vector<Cycle> released(12, kCycleNever);
      for (CoreId c = 0; c < 12; ++c) {
        e.ScheduleAt(arrival[c], [&, c]() {
          net.Arrive(0, c, [&, c]() { released[c] = e.Now(); });
        });
      }
      EXPECT_TRUE(e.RunUntilIdle(1'000'000));
      return released;
    };
    EXPECT_EQ(drive(e_ref, ref), drive(e_inj, hooked));
    EXPECT_EQ(s_inj.CounterValue("fault.injected"), 0u);
    EXPECT_EQ(s_inj.CounterValue("gl.timeouts"), 0u);
  }
}

// ---------------------------------------------------------------------------
// Self-healing v2: straggler + rejoin fuzz
// ---------------------------------------------------------------------------

// Randomized straggler plans (persistent slowdowns, work skew) combined
// with G-line drops over 32..1024-core meshes, flat and hierarchical,
// with the v2 adaptive watchdog and hardware rejoin armed. Asserts the
// v1 safety invariant (never hang, never release early, every episode
// completes) plus the v2 liveness obligation: when the fault horizon is
// finite (scripted drops only), every degraded context must eventually
// shadow-probe the healthy wires and rejoin.
class StragglerRejoinFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StragglerRejoinFuzz, SafetyHoldsAndFaultFreePlansRejoin) {
  Rng rng(GetParam() * 0x2545F4914F6CDD1Dull + 17);

  // Shape and topology derive from the seed index (not the rng) so the
  // 15-seed suite provably covers every (mesh, flat-vs-hier) combination
  // including both 64-core and 1024-core extremes.
  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {4, 8}, {8, 8}, {16, 16}, {32, 32}};  // 32 .. 1024 cores
  const auto [rows, cols] = shapes[(GetParam() - 1) % std::size(shapes)];
  const std::uint32_t n = rows * cols;
  const bool hier = (GetParam() % 2) == 0;

  // Scripted drops are a finite fault horizon: once every entry is
  // consumed the wires are healthy forever, so eventual rejoin is an
  // obligation. Some seeds add a persistent probabilistic drop rate
  // instead; those assert safety only (staying degraded is legitimate
  // when the wire really is flaky).
  const bool persistent_drops = rng.NextBool(0.33);

  sim::Engine engine;
  StatSet stats;

  // Watchdog floor above the worst-case stretched arrival skew: base
  // delay <= 40, slowdown factor <= 4, skew factor <= 2 => 320 cycles.
  const Cycle watchdog = 400 + rng.NextBelow(201);
  const auto retries = static_cast<std::uint32_t>(rng.NextBelow(3));
  const double mult = 2.0 + rng.NextDouble() * 4.0;
  const auto probe_after = static_cast<std::uint32_t>(1 + rng.NextBelow(3));
  const auto probe_successes = static_cast<std::uint32_t>(1 + rng.NextBelow(2));

  std::unique_ptr<BarrierNetwork> flat;
  std::unique_ptr<HierarchicalBarrierNetwork> tree;
  if (hier) {
    HierConfig cfg;
    cfg.watchdog_timeout = watchdog;
    cfg.max_retries = retries;
    cfg.watchdog_mult = mult;
    cfg.probe_after = probe_after;
    cfg.probe_successes = probe_successes;
    tree = std::make_unique<HierarchicalBarrierNetwork>(engine, rows, cols,
                                                        cfg, stats);
  } else {
    BarrierNetConfig cfg;
    cfg.watchdog_timeout = watchdog;
    cfg.max_retries = retries;
    cfg.watchdog_mult = mult;
    cfg.probe_after = probe_after;
    cfg.probe_successes = probe_successes;
    flat = std::make_unique<BarrierNetwork>(engine, rows, cols, cfg, stats);
  }

  fault::FaultPlan plan;
  plan.seed = GetParam();
  plan.core_slow_rate = rng.NextBool(0.7) ? rng.NextDouble() * 0.5 : 0.0;
  plan.core_slow_factor = 2.0 + rng.NextDouble() * 2.0;  // 2 .. 4
  plan.work_skew = rng.NextBool(0.5) ? rng.NextDouble() : 0.0;
  if (persistent_drops) plan.gline_drop_rate = 0.05 + rng.NextDouble() * 0.15;
  const auto scripted = static_cast<std::uint32_t>(rng.NextBelow(12));
  for (std::uint32_t i = 0; i < scripted; ++i) {
    plan.script.push_back(
        {rng.NextBelow(4000), fault::FaultSite::kGlineDrop, "sglineH", 0});
  }
  fault::FaultInjector inj(engine, plan, stats);
  if (hier) {
    inj.Arm(*tree);
  } else {
    inj.Arm(*flat);
  }
  inj.ConfigureCompute(n);

  auto arrive = [&](CoreId c, std::function<void()> cb) {
    if (hier) {
      tree->Arrive(0, c, std::move(cb));
    } else {
      flat->Arrive(0, c, std::move(cb));
    }
  };
  std::uint64_t episodes_done = 0;
  auto run_episode = [&]() {
    std::uint32_t arrived = 0, released = 0;
    bool early = false;
    const Cycle now = engine.Now();
    for (CoreId c = 0; c < n; ++c) {
      const Cycle at = now + inj.StretchCompute(c, 1 + rng.NextBelow(40));
      engine.ScheduleAt(at, [&, c]() {
        ++arrived;
        arrive(c, [&]() {
          if (arrived != n) early = true;
          ++released;
        });
      });
    }
    ASSERT_TRUE(engine.RunUntilIdle(20'000'000))
        << "hung in episode " << episodes_done << " (seed " << GetParam()
        << ", " << rows << "x" << cols << (hier ? " hier" : " flat") << ")";
    ASSERT_FALSE(early) << "released a core before all " << n
                        << " arrived (seed " << GetParam() << ")";
    ASSERT_EQ(released, n) << "episode " << episodes_done
                           << " starved (seed " << GetParam() << ")";
    ++episodes_done;
  };

  constexpr std::uint64_t kEpisodes = 12;
  for (std::uint64_t e = 0; e < kEpisodes; ++e) {
    run_episode();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(hier ? tree->barriers_completed() : flat->barriers_completed(),
            kEpisodes);

  if (!persistent_drops) {
    // Settling phase: the wires have been healthy since the last
    // scripted entry was consumed, so probes must eventually run clean
    // and every degraded context must return to the hardware path.
    auto degraded = [&]() {
      return hier ? tree->degraded_any() : flat->degraded(0);
    };
    int extra = 0;
    while (degraded() && extra < 40) {
      run_episode();
      if (::testing::Test::HasFatalFailure()) return;
      ++extra;
    }
    EXPECT_FALSE(degraded())
        << "context never rejoined after the scripted fault horizon (seed "
        << GetParam() << ", " << extra << " settling episodes)";
    const std::uint64_t deg = hier
                                  ? tree->AggregateCounter("degraded_episodes")
                                  : stats.CounterValue("gl.degraded_episodes");
    const std::uint64_t rejoins =
        hier ? tree->AggregateCounter("rejoins") : flat->rejoins(0);
    if (deg > 0) {
      EXPECT_GE(rejoins, 1u)
          << "episodes degraded but no rejoin recorded (seed " << GetParam()
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StragglerRejoinFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

// Scripted regression with a provable rejoin: one drop kills the first
// episode's gather, zero retry budget degrades the context immediately,
// and because the script is then spent the probe sequence must bring
// the context back — with post-rejoin releases bit-identical to a
// never-faulted reference network.
TEST(StragglerRejoinRegression, FlatScriptedDropDegradesThenRejoins) {
  sim::Engine engine;
  StatSet stats;
  BarrierNetConfig cfg;
  cfg.watchdog_timeout = 100;
  cfg.max_retries = 0;
  cfg.probe_after = 2;
  cfg.probe_successes = 1;
  BarrierNetwork net(engine, 2, 2, cfg, stats);

  fault::FaultPlan plan;
  plan.script.push_back({0, fault::FaultSite::kGlineDrop, "sglineH", 0});
  fault::FaultInjector inj(engine, plan, stats);
  inj.Arm(net);

  auto episode = [&](Cycle start) {
    std::vector<Cycle> released(4, kCycleNever);
    for (CoreId c = 0; c < 4; ++c) {
      engine.ScheduleAt(start, [&, c]() {
        net.Arrive(0, c, [&, c]() { released[c] = engine.Now(); });
      });
    }
    EXPECT_TRUE(engine.RunUntilIdle(1'000'000));
    for (Cycle r : released) EXPECT_NE(r, kCycleNever);
    return released;
  };

  // Episode 1: the scripted drop eats a row gather; with no retry
  // budget the watchdog degrades the context straight to the fallback.
  episode(10);
  ASSERT_TRUE(net.degraded(0));
  EXPECT_EQ(net.health(0), BarrierNetwork::Health::kDegraded);
  EXPECT_EQ(stats.CounterValue("gl.degraded_episodes"), 1u);

  // Fallback episodes accumulate toward probe_after = 2; the next
  // episode's arrivals are then shadow-signaled through the (now
  // healthy) wires and one clean probe rejoins the hardware path.
  Cycle t = 1000;
  while (net.degraded(0) && t < 20'000) {
    episode(t);
    t += 1000;
  }
  EXPECT_FALSE(net.degraded(0));
  EXPECT_EQ(net.health(0), BarrierNetwork::Health::kRejoined);
  EXPECT_GE(net.rejoins(0), 1u);
  EXPECT_GE(stats.CounterValue("gl.probes"), 1u);
  EXPECT_EQ(stats.CounterValue("gl.rejoins"), net.rejoins(0));

  // Post-rejoin episodes must run on hardware again: same release
  // cycles as a reference network that never saw a fault.
  sim::Engine ref_engine;
  StatSet ref_stats;
  BarrierNetwork ref(ref_engine, 2, 2, cfg, ref_stats);
  std::vector<Cycle> ref_released(4, kCycleNever);
  for (CoreId c = 0; c < 4; ++c) {
    ref_engine.ScheduleAt(100, [&, c]() {
      ref.Arrive(0, c, [&, c]() { ref_released[c] = ref_engine.Now(); });
    });
  }
  EXPECT_TRUE(ref_engine.RunUntilIdle(1'000'000));
  const Cycle t0 = t + 1000;
  const auto got = episode(t0);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(got[c] - t0, ref_released[c] - 100)
        << "core " << c << " not released on the 4-cycle hardware path";
  }
}

// Same obligation at depth: a scripted drop confined to one leaf
// cluster of an 8x8 two-level hierarchy degrades that node only, and
// the node (not the whole chip) probes and rejoins.
TEST(StragglerRejoinRegression, HierLeafNodeRejoinsAtDepth) {
  sim::Engine engine;
  StatSet stats;
  HierConfig cfg;
  cfg.watchdog_timeout = 200;
  cfg.max_retries = 0;
  cfg.probe_after = 2;
  cfg.probe_successes = 1;
  HierarchicalBarrierNetwork net(engine, 8, 8, cfg, stats);
  ASSERT_GE(net.num_levels(), 2u);

  fault::FaultPlan plan;
  plan.script.push_back({0, fault::FaultSite::kGlineDrop, "l0.c0.", 0});
  fault::FaultInjector inj(engine, plan, stats);
  inj.Arm(net);

  constexpr std::uint32_t kCores = 64;
  int episodes = 0;
  auto episode = [&](Cycle start) {
    std::uint32_t arrived = 0, released = 0;
    bool early = false;
    for (CoreId c = 0; c < kCores; ++c) {
      engine.ScheduleAt(start, [&, c]() {
        ++arrived;
        net.Arrive(0, c, [&]() {
          if (arrived != kCores) early = true;
          ++released;
        });
      });
    }
    ASSERT_TRUE(engine.RunUntilIdle(10'000'000));
    ASSERT_FALSE(early);
    ASSERT_EQ(released, kCores);
    ++episodes;
  };

  episode(10);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(net.degraded_any());
  // The fault was confined to node l0.c0; its siblings stay healthy.
  EXPECT_TRUE(net.node(0, 0).degraded(0));
  EXPECT_FALSE(net.node(0, 1).degraded(0));
  EXPECT_FALSE(net.node(1, 0).degraded(0));

  Cycle t = 5000;
  while (net.degraded_any() && t < 100'000) {
    episode(t);
    if (::testing::Test::HasFatalFailure()) return;
    t += 5000;
  }
  EXPECT_FALSE(net.degraded_any());
  EXPECT_EQ(net.node(0, 0).health(0), BarrierNetwork::Health::kRejoined);
  EXPECT_GE(net.AggregateCounter("rejoins"), 1u);
  EXPECT_GE(net.AggregateCounter("probes"), 1u);
  EXPECT_EQ(net.barriers_completed(), static_cast<std::uint64_t>(episodes));
}

// ---------------------------------------------------------------------------
// 256-core straggler determinism
// ---------------------------------------------------------------------------

namespace determinism {

/// Compute-then-barrier loop (the straggler hooks stretch Compute, so
/// the workload must actually compute — Synthetic never does).
class ComputeLoop final : public workloads::Workload {
 public:
  const char* name() const override { return "ComputeLoop"; }
  std::string input_desc() const override { return "20 x 64-cycle phases"; }
  void Init(cmp::CmpSystem&) override {}
  core::Task Body(core::Core& core, CoreId, sync::Barrier& barrier) override {
    for (int it = 0; it < 20; ++it) {
      co_await core.Compute(64);
      co_await barrier.Wait(core);
    }
  }
  std::string Validate(cmp::CmpSystem& sys) override {
    const std::uint64_t expected = std::uint64_t{20} * sys.num_cores();
    const std::uint64_t got = sys.stats().CounterValue("core.barriers");
    if (got != expected) return "barrier count mismatch";
    return "";
  }
};

/// One full 256-core gl-hier run under a straggler+drop plan with the
/// v2 machinery armed, returning the complete run manifest (config,
/// metrics, resilience block, every counter and histogram).
std::string RunManifest() {
  cmp::CmpConfig cfg = cmp::CmpConfig::WithCores(256);
  cfg.hier.enabled = true;
  cfg.hier.watchdog_timeout = 400;
  cfg.hier.watchdog_mult = 3.0;
  cfg.hier.probe_after = 2;
  cfg.hier.probe_successes = 1;
  cfg.fault.seed = 7;
  cfg.fault.core_slow_rate = 0.25;
  cfg.fault.core_slow_factor = 6.0;
  cfg.fault.work_skew = 0.5;
  cfg.fault.gline_drop_rate = 0.01;

  cmp::CmpSystem sys(cfg);
  ComputeLoop wl;
  wl.Init(sys);
  auto barrier = harness::MakeBarrier(harness::BarrierKind::kGLH, sys);
  const sim::RunStatus status = sys.RunProgramsStatus(
      [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); },
      /*max_cycles=*/100'000'000);
  harness::RunMetrics m =
      harness::CollectMetrics(sys, status, wl, "GLH");  // wall_ms stays 0
  EXPECT_TRUE(m.completed) << m.stall;
  EXPECT_TRUE(m.validation.empty()) << m.validation;

  std::ostringstream os;
  harness::ManifestOptions opts;
  opts.tool = "fuzz";
  harness::WriteRunManifest(os, m, sys.config(), sys.stats(), opts);
  return os.str();
}

}  // namespace determinism

// Straggler picks are hash-derived from (seed, core), never from the
// shared decision stream, so a full 256-core run — stragglers, drops,
// adaptive watchdog, rejoins and all — must be byte-identical across
// repeats, down to every histogram in the manifest.
TEST(StragglerDeterminism, Hier256CoreManifestIsByteIdenticalAcrossRuns) {
  const std::string first = determinism::RunManifest();
  const std::string second = determinism::RunManifest();
  EXPECT_EQ(first, second);
  // The run must actually have exercised the straggler machinery.
  EXPECT_NE(first.find("\"core_slow_rate\""), std::string::npos);
  EXPECT_NE(first.find("\"resilience\""), std::string::npos);
}

}  // namespace
}  // namespace glb::gline
