// Perf-regression gate tests: row extraction from every understood
// schema, the exact-match rule for deterministic metrics, the
// thresholded rule for host-time metrics, and the --inject-regression
// self-test hook the CI smoke relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/benchdiff.h"

namespace glb::harness::benchdiff {
namespace {

const Row* FindRow(const std::vector<Row>& rows, const std::string& id) {
  for (const Row& r : rows) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const Metric* FindMetric(const Row& r, const std::string& key) {
  for (const Metric& m : r.metrics) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

constexpr const char kRunDoc[] =
    R"({"schema":"glb.run","tool":"glbsim","run":{"workload":"Kernel3",)"
    R"("barrier":"GL","cores":16,"cycles":65241,"barriers_per_core":100,)"
    R"("host_events_per_sec":1.25e6,"noc_msgs":{"total":7074}}})";

TEST(BenchDiffParse, ExtractsRunRows) {
  const std::vector<Row> rows = ParseRows(kRunDoc);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].id, "glb.run/Kernel3/GL/16c");
  const Metric* cycles = FindMetric(rows[0], "cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_TRUE(cycles->deterministic);
  EXPECT_EQ(cycles->value, 65241);
  const Metric* eps = FindMetric(rows[0], "host_events_per_sec");
  ASSERT_NE(eps, nullptr);
  EXPECT_FALSE(eps->deterministic);
  EXPECT_TRUE(eps->higher_better);
}

TEST(BenchDiffParse, ExtractsFig5PointsAsDeterministicRows) {
  const std::vector<Row> rows = ParseRows(
      R"({"schema":"glb.fig5","points":[
           {"cores":4,"gline_cycles":11,"tree_cycles":40},
           {"cores":16,"gline_cycles":13,"tree_cycles":80}]})");
  ASSERT_EQ(rows.size(), 2u);
  const Row* r16 = FindRow(rows, "glb.fig5/16c");
  ASSERT_NE(r16, nullptr);
  for (const Metric& m : r16->metrics) EXPECT_TRUE(m.deterministic);
  ASSERT_NE(FindMetric(*r16, "gline_cycles"), nullptr);
  EXPECT_EQ(FindMetric(*r16, "gline_cycles")->value, 13);
  EXPECT_EQ(FindMetric(*r16, "cores"), nullptr);  // the id, not a metric
}

TEST(BenchDiffParse, JsonlKeepsTheLastRowPerId) {
  const std::string two_lines = std::string(kRunDoc) + "\n" +
      R"({"schema":"glb.run","run":{"workload":"Kernel3","barrier":"GL",)" +
      R"("cores":16,"cycles":70000,"barriers_per_core":100}})" + "\n";
  const std::vector<Row> rows = ParseRows(two_lines);
  ASSERT_EQ(rows.size(), 2u);
  // Diff sees only the later one.
  const DiffResult res = Diff(rows, rows, DiffOptions{});
  EXPECT_TRUE(res.ok());
}

TEST(BenchDiffParse, MalformedLinesWarnAndSkip) {
  std::vector<std::string> warnings;
  const std::vector<Row> rows =
      ParseRows(std::string(kRunDoc) + "\nnot json at all\n", &warnings);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(warnings.size(), 1u);
}

TEST(BenchDiffDiff, IdenticalInputsPass) {
  const std::vector<Row> rows = ParseRows(kRunDoc);
  const DiffResult res = Diff(rows, rows, DiffOptions{});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.regressions, 0);
  EXPECT_EQ(res.compared, 4);
}

TEST(BenchDiffDiff, DeterministicDriftIsAlwaysARegression) {
  const std::vector<Row> base = ParseRows(kRunDoc);
  std::vector<Row> cand = base;
  for (Metric& m : cand[0].metrics) {
    if (m.key == "cycles") m.value += 1;  // one cycle of drift
  }
  const DiffResult res = Diff(base, cand, DiffOptions{});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
}

TEST(BenchDiffDiff, TimeMetricsTolerateTheThresholdButNotMore) {
  const std::vector<Row> base = ParseRows(kRunDoc);
  DiffOptions opts;
  opts.time_threshold = 0.10;

  std::vector<Row> slower = base;
  FindRow(slower, "glb.run/Kernel3/GL/16c");
  for (Metric& m : slower[0].metrics) {
    if (m.key == "host_events_per_sec") m.value *= 0.95;  // -5%: within
  }
  EXPECT_TRUE(Diff(base, slower, opts).ok());

  std::vector<Row> much_slower = base;
  for (Metric& m : much_slower[0].metrics) {
    if (m.key == "host_events_per_sec") m.value *= 0.80;  // -20%: out
  }
  EXPECT_FALSE(Diff(base, much_slower, opts).ok());

  // Faster is never a regression for a higher-is-better metric.
  std::vector<Row> faster = base;
  for (Metric& m : faster[0].metrics) {
    if (m.key == "host_events_per_sec") m.value *= 2.0;
  }
  EXPECT_TRUE(Diff(base, faster, opts).ok());

  // --no-time ignores even a huge slip.
  opts.compare_time = false;
  EXPECT_TRUE(Diff(base, much_slower, opts).ok());
}

TEST(BenchDiffDiff, NearZeroBaselinesUseAbsoluteSlack) {
  // allocs_per_event baselines hover at ~0.003; a relative threshold
  // would flag 0.003 -> 0.004 (+33%) as a regression. The absolute
  // floor keeps noise out but still catches a real leak.
  const char* base_doc = R"({"schema":"glb.micro_engine","results":[
      {"name":"BM_Steady","items_per_second":5.0e6,"allocs_per_event":0.003}]})";
  const std::vector<Row> base = ParseRows(base_doc);
  ASSERT_EQ(base.size(), 1u);

  std::vector<Row> noisy = base;
  for (Metric& m : noisy[0].metrics) {
    if (m.key == "allocs_per_event") m.value = 0.004;
  }
  EXPECT_TRUE(Diff(base, noisy, DiffOptions{}).ok());

  std::vector<Row> leaky = base;
  for (Metric& m : leaky[0].metrics) {
    if (m.key == "allocs_per_event") m.value = 0.5;  // a real leak
  }
  EXPECT_FALSE(Diff(base, leaky, DiffOptions{}).ok());
}

TEST(BenchDiffDiff, MissingRowsRegressNewRowsAreNotes) {
  const std::vector<Row> base = ParseRows(
      R"({"schema":"glb.fig5","points":[{"cores":4,"gline_cycles":11},
                                        {"cores":16,"gline_cycles":13}]})");
  const std::vector<Row> cand = ParseRows(
      R"({"schema":"glb.fig5","points":[{"cores":4,"gline_cycles":11},
                                        {"cores":64,"gline_cycles":17}]})");
  const DiffResult res = Diff(base, cand, DiffOptions{});
  EXPECT_FALSE(res.ok());  // the 16c baseline row vanished
  EXPECT_EQ(res.regressions, 1);
  bool noted_new = false;
  for (const std::string& line : res.lines) {
    if (line.find("glb.fig5/64c") != std::string::npos &&
        line.find("note") != std::string::npos) {
      noted_new = true;
    }
  }
  EXPECT_TRUE(noted_new);  // new rows inform, they don't fail
}

TEST(BenchDiffDiff, InjectedRegressionTripsTheGate) {
  // The CI smoke: self-diff passes clean, fails with injection (the
  // injection must exceed the threshold, so 10% injected vs 5% allowed).
  const std::vector<Row> rows = ParseRows(kRunDoc);
  DiffOptions opts;
  opts.time_threshold = 0.05;
  EXPECT_TRUE(Diff(rows, rows, opts).ok());
  opts.inject_regression_pct = 10.0;
  const DiffResult res = Diff(rows, rows, opts);
  EXPECT_FALSE(res.ok());
  // Only time metrics are perturbed — deterministic ones still match.
  for (const std::string& line : res.lines) {
    EXPECT_EQ(line.find("cycles"), std::string::npos) << line;
  }
}

TEST(BenchDiffParse, ExtractsFig5ScalePointsAsDeterministicRows) {
  const std::vector<Row> rows = ParseRows(
      R"({"schema":"glb.fig5_scale","points":[
           {"cores":64,"barrier":"RDBL","avg_cycles":509},
           {"cores":64,"barrier":"TUNED","avg_cycles":612,
            "tuned_choice":"RDBL"},
           {"cores":256,"barrier":"GALOIS","avg_cycles":5375}]})");
  ASSERT_EQ(rows.size(), 3u);
  const Row* r = FindRow(rows, "glb.fig5_scale/64c/TUNED");
  ASSERT_NE(r, nullptr);
  const Metric* avg = FindMetric(*r, "avg_cycles");
  ASSERT_NE(avg, nullptr);
  EXPECT_TRUE(avg->deterministic);
  EXPECT_EQ(avg->value, 612);
  ASSERT_NE(FindRow(rows, "glb.fig5_scale/256c/GALOIS"), nullptr);
}

TEST(BenchDiffParse, ExtractsZooCellsAndWinnerRows) {
  const std::vector<Row> rows = ParseRows(
      R"({"schema":"glb.zoo","cells":[
           {"cores":64,"busy_period":2000,
            "barriers":[{"barrier":"RDBL","avg_cycles":509},
                        {"barrier":"GALOIS","avg_cycles":2006}],
            "best_sw":"RDBL","best_sw_avg_cycles":509,
            "gl_margin":12.5,"glh_margin":10.1}]})");
  ASSERT_EQ(rows.size(), 3u);
  const Row* rdbl = FindRow(rows, "glb.zoo/64c/p2000/RDBL");
  ASSERT_NE(rdbl, nullptr);
  EXPECT_TRUE(FindMetric(*rdbl, "avg_cycles")->deterministic);
  const Row* winner = FindRow(rows, "glb.zoo/64c/p2000/winner:RDBL");
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(FindMetric(*winner, "best_sw_avg_cycles")->value, 509);
  ASSERT_NE(FindMetric(*winner, "glh_margin"), nullptr);
  EXPECT_TRUE(FindMetric(*winner, "glh_margin")->deterministic);
}

TEST(BenchDiffParse, GoogleBenchmarkNativeFormat) {
  const std::vector<Row> rows = ParseRows(
      R"({"context":{"host_name":"x"},"benchmarks":[
           {"name":"BM_Engine/1024","run_type":"iteration",
            "real_time":123.4,"items_per_second":8.1e6},
           {"name":"BM_Engine/1024_mean","run_type":"aggregate",
            "items_per_second":8.0e6}]})");
  ASSERT_EQ(rows.size(), 1u);  // aggregates are skipped
  EXPECT_EQ(rows[0].id, "benchmark/BM_Engine/1024");
  ASSERT_NE(FindMetric(rows[0], "items_per_second"), nullptr);
  EXPECT_TRUE(FindMetric(rows[0], "items_per_second")->higher_better);
}

}  // namespace
}  // namespace glb::harness::benchdiff
