// G-line barrier network tests: wire/S-CSMA behaviour, the Figure-4
// FSMs, the 4-cycle synchronization walkthrough of Figure 2, skewed
// arrivals, back-to-back barriers, transmitter-limit policies, and the
// multi-context / partial-participation extensions.
#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "gline/barrier_network.h"
#include "gline/gline.h"
#include "sim/engine.h"

namespace glb::gline {
namespace {

// ---------------------------------------------------------------------------
// GLine wire + S-CSMA
// ---------------------------------------------------------------------------

TEST(GLineWire, SingleAssertArrivesOneCycleLater) {
  sim::Engine e;
  GLine line(e, "t", 4, 6, TxPolicy::kReject, nullptr);
  Cycle at = kCycleNever;
  std::uint32_t count = 0;
  line.AddReceiver([&](std::uint32_t c) {
    at = e.Now();
    count = c;
  });
  e.ScheduleAt(10, [&]() { line.Assert(); });
  e.RunUntilIdle();
  EXPECT_EQ(at, 11u);
  EXPECT_EQ(count, 1u);
}

// S-CSMA: k simultaneous transmitters are counted exactly.
class Scsma : public ::testing::TestWithParam<int> {};

TEST_P(Scsma, CountsSimultaneousTransmitters) {
  const int k = GetParam();
  sim::Engine e;
  GLine line(e, "t", 6, 6, TxPolicy::kReject, nullptr);
  std::uint32_t count = 0;
  line.AddReceiver([&](std::uint32_t c) { count = c; });
  e.ScheduleAt(5, [&]() {
    for (int i = 0; i < k; ++i) line.Assert();
  });
  e.RunUntilIdle();
  EXPECT_EQ(count, static_cast<std::uint32_t>(k));
}

INSTANTIATE_TEST_SUITE_P(OneToSix, Scsma, ::testing::Range(1, 7));

TEST(GLineWire, SeparateCyclesAreSeparateBatches) {
  sim::Engine e;
  GLine line(e, "t", 3, 6, TxPolicy::kReject, nullptr);
  std::vector<std::pair<Cycle, std::uint32_t>> got;
  line.AddReceiver([&](std::uint32_t c) { got.emplace_back(e.Now(), c); });
  e.ScheduleAt(1, [&]() { line.Assert(); });
  e.ScheduleAt(1, [&]() { line.Assert(); });
  e.ScheduleAt(2, [&]() { line.Assert(); });
  e.RunUntilIdle();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(Cycle{2}, 2u));
  EXPECT_EQ(got[1], std::make_pair(Cycle{3}, 1u));
}

TEST(GLineWire, WithinBudgetHasUnitLatency) {
  sim::Engine e;
  GLine line(e, "t", 6, 6, TxPolicy::kReject, nullptr);
  EXPECT_EQ(line.latency(), 1u);
}

TEST(GLineWire, RelaxedPolicyScalesLatency) {
  sim::Engine e;
  EXPECT_EQ(GLine(e, "a", 7, 6, TxPolicy::kRelaxed, nullptr).latency(), 2u);
  EXPECT_EQ(GLine(e, "b", 12, 6, TxPolicy::kRelaxed, nullptr).latency(), 2u);
  EXPECT_EQ(GLine(e, "c", 13, 6, TxPolicy::kRelaxed, nullptr).latency(), 3u);
}

TEST(GLineWireDeath, RejectPolicyRefusesOverload) {
  sim::Engine e;
  EXPECT_DEATH(GLine(e, "t", 7, 6, TxPolicy::kReject, nullptr), "exceeding the limit");
}

TEST(GLineWire, MultipleReceiversAllObserve) {
  sim::Engine e;
  GLine line(e, "t", 1, 6, TxPolicy::kReject, nullptr);
  int calls = 0;
  for (int i = 0; i < 3; ++i) line.AddReceiver([&](std::uint32_t) { ++calls; });
  e.ScheduleAt(0, [&]() { line.Assert(); });
  e.RunUntilIdle();
  EXPECT_EQ(calls, 3);
}

// In-flight Flush events capture the line's `this`: a moved-from GLine
// would leave those events dangling. The type is pinned in place
// (containers must hold it through std::unique_ptr).
static_assert(!std::is_move_constructible_v<GLine>);
static_assert(!std::is_move_assignable_v<GLine>);
static_assert(!std::is_copy_constructible_v<GLine>);
static_assert(!std::is_copy_assignable_v<GLine>);

TEST(GLineWire, CancelPendingDropsAllInFlightBatches) {
  // A relaxed 13-transmitter line has latency 3, so three batches can be
  // in flight at once; CancelPending must invalidate every one of them,
  // and batches opened afterwards must deliver normally.
  sim::Engine e;
  GLine line(e, "t", 13, 6, TxPolicy::kRelaxed, nullptr);
  ASSERT_EQ(line.latency(), 3u);
  std::vector<std::pair<Cycle, std::uint32_t>> got;
  line.AddReceiver([&](std::uint32_t c) { got.emplace_back(e.Now(), c); });
  e.ScheduleAt(1, [&]() { line.Assert(); });
  e.ScheduleAt(2, [&]() { line.Assert(); });
  e.ScheduleAt(3, [&]() { line.Assert(); });
  // Same cycle as the third Assert, but scheduled after it: the batch
  // opened this very cycle is cancelled too.
  e.ScheduleAt(3, [&]() {
    EXPECT_TRUE(line.has_pending());
    line.CancelPending();
    EXPECT_FALSE(line.has_pending());
  });
  e.ScheduleAt(4, [&]() { line.Assert(); });
  e.RunUntilIdle();
  ASSERT_EQ(got.size(), 1u) << "cancelled batches must not deliver";
  EXPECT_EQ(got[0], std::make_pair(Cycle{7}, 1u));
}

// ---------------------------------------------------------------------------
// BarrierNetwork
// ---------------------------------------------------------------------------

struct NetFixture {
  sim::Engine engine;
  StatSet stats;
  std::unique_ptr<BarrierNetwork> net;

  NetFixture(std::uint32_t rows, std::uint32_t cols, BarrierNetConfig cfg = {}) {
    net = std::make_unique<BarrierNetwork>(engine, rows, cols, cfg, stats);
  }

  /// All cores in `mask` (default: everyone) arrive at `when`; returns
  /// per-core release cycles (kCycleNever for non-participants).
  std::vector<Cycle> RunOneBarrier(const std::vector<Cycle>& arrival_cycles,
                                   std::uint32_t ctx = 0) {
    std::vector<Cycle> released(net->num_cores(), kCycleNever);
    for (CoreId c = 0; c < net->num_cores(); ++c) {
      if (arrival_cycles[c] == kCycleNever) continue;
      engine.ScheduleAt(arrival_cycles[c], [this, c, ctx, &released]() {
        net->Arrive(ctx, c, [this, c, &released]() { released[c] = engine.Now(); });
      });
    }
    EXPECT_TRUE(engine.RunUntilIdle(1'000'000));
    return released;
  }
};

TEST(BarrierNet, LineBudgetMatchesPaperFormula) {
  // 2 x (rows + 1) lines per context; Figure 1's 16-core example: 10.
  NetFixture f(4, 4);
  EXPECT_EQ(f.net->total_lines(), 10u);
}

TEST(BarrierNet, FourCycleSynchronization2x2) {
  // The Figure-2 walkthrough: all four cores arrive at cycle 10; slave
  // cores resume 4 cycles later, column-0 cores one cycle earlier.
  NetFixture f(2, 2);
  const std::vector<Cycle> arrivals(4, 10);
  const auto released = f.RunOneBarrier(arrivals);
  // Nodes 1 and 3 are SlaveH nodes (col 1): T+4.
  EXPECT_EQ(released[1], 14u);
  EXPECT_EQ(released[3], 14u);
  // Nodes 0 and 2 are column-0 (MasterH) nodes: released at T+3.
  EXPECT_EQ(released[0], 13u);
  EXPECT_EQ(released[2], 13u);
  EXPECT_EQ(f.net->barriers_completed(), 1u);
}

TEST(BarrierNet, FourCycleSynchronization4x4) {
  // Latency is independent of mesh size while lines stay within budget.
  NetFixture f(4, 4);
  const std::vector<Cycle> arrivals(16, 100);
  const auto released = f.RunOneBarrier(arrivals);
  for (CoreId c = 0; c < 16; ++c) {
    const Cycle expect = (c % 4 == 0) ? 103u : 104u;
    EXPECT_EQ(released[c], expect) << "core " << c;
  }
}

TEST(BarrierNet, SevenBySevenStillFourCycles) {
  // The largest configuration the 6-transmitter budget supports.
  NetFixture f(7, 7, BarrierNetConfig{1, 6, TxPolicy::kReject});
  const std::vector<Cycle> arrivals(49, 50);
  const auto released = f.RunOneBarrier(arrivals);
  for (CoreId c = 0; c < 49; ++c) {
    const Cycle expect = (c % 7 == 0) ? 53u : 54u;
    EXPECT_EQ(released[c], expect) << "core " << c;
  }
}

TEST(BarrierNet, NoReleaseBeforeLastArrival) {
  NetFixture f(2, 2);
  std::vector<Cycle> arrivals{10, 500, 20, 30};  // core 1 is very late
  const auto released = f.RunOneBarrier(arrivals);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_GE(released[c], 500u) << "core " << c << " released early";
    EXPECT_LE(released[c], 505u) << "core " << c << " released too late";
  }
}

TEST(BarrierNet, SkewedArrivalsAnyOrder) {
  NetFixture f(4, 4);
  std::vector<Cycle> arrivals(16);
  for (CoreId c = 0; c < 16; ++c) arrivals[c] = 10 + ((c * 7) % 13) * 10;
  const Cycle last = *std::max_element(arrivals.begin(), arrivals.end());
  const auto released = f.RunOneBarrier(arrivals);
  for (CoreId c = 0; c < 16; ++c) {
    EXPECT_GE(released[c], last);
    EXPECT_LE(released[c], last + 4);
  }
}

TEST(BarrierNet, BackToBackBarriersReuseTheNetwork) {
  NetFixture f(2, 2);
  for (int episode = 0; episode < 50; ++episode) {
    const Cycle t = f.engine.Now() + 3;
    const auto released = f.RunOneBarrier(std::vector<Cycle>(4, t));
    for (CoreId c = 0; c < 4; ++c) {
      ASSERT_GE(released[c], t + 3) << "episode " << episode;
      ASSERT_LE(released[c], t + 4) << "episode " << episode;
    }
  }
  EXPECT_EQ(f.net->barriers_completed(), 50u);
}

TEST(BarrierNet, FsmStatesFollowFigure4) {
  NetFixture f(2, 2);
  auto& e = f.engine;
  auto& net = *f.net;
  // Initially: masters Accounting, slaves Signaling.
  EXPECT_EQ(net.MasterHState(0, 0), BarrierNetwork::MasterState::kAccounting);
  EXPECT_EQ(net.MasterVState(0), BarrierNetwork::MasterState::kAccounting);
  EXPECT_EQ(net.SlaveHState(0, 1), BarrierNetwork::SlaveState::kSignaling);
  EXPECT_EQ(net.SlaveVState(0, 1), BarrierNetwork::SlaveState::kSignaling);

  bool r1 = false, r3 = false;
  // Core 1 (SlaveH of row 0) arrives: Signaling -> Waiting immediately.
  e.ScheduleAt(10, [&]() { net.Arrive(0, 1, [&]() { r1 = true; }); });
  e.RunUntil(10);
  EXPECT_EQ(net.SlaveHState(0, 1), BarrierNetwork::SlaveState::kWaiting);
  EXPECT_EQ(net.ScntH(0, 0), 0u) << "count arrives one cycle later";
  e.RunUntil(11);
  EXPECT_EQ(net.ScntH(0, 0), 1u) << "S-CSMA count registered";
  EXPECT_EQ(net.MasterHState(0, 0), BarrierNetwork::MasterState::kAccounting)
      << "row 0 master still waits for its own core";

  // Core 0 (MasterH node of row 0) arrives: Mcnt set, row completes,
  // MasterH -> Waiting, MasterV sees node-0 flag.
  e.ScheduleAt(20, [&]() { net.Arrive(0, 0, []() {}); });
  e.RunUntil(20);
  EXPECT_TRUE(net.McntH(0, 0));
  EXPECT_EQ(net.MasterHState(0, 0), BarrierNetwork::MasterState::kWaiting);
  EXPECT_EQ(net.MasterVState(0), BarrierNetwork::MasterState::kAccounting)
      << "row 1 has not completed yet";

  // Row 1 completes: core 3 (slave), then core 2 (master node).
  e.ScheduleAt(30, [&]() { net.Arrive(0, 3, [&]() { r3 = true; }); });
  e.ScheduleAt(32, [&]() { net.Arrive(0, 2, []() {}); });
  e.RunUntil(32);
  EXPECT_EQ(net.MasterHState(0, 1), BarrierNetwork::MasterState::kWaiting);
  EXPECT_EQ(net.SlaveVState(0, 1), BarrierNetwork::SlaveState::kWaiting)
      << "SlaveV signalled and waits";
  EXPECT_FALSE(r1);

  // Release wave: everything returns to the initial state.
  e.RunUntilIdle();
  EXPECT_TRUE(r1);
  EXPECT_TRUE(r3);
  EXPECT_EQ(net.MasterHState(0, 0), BarrierNetwork::MasterState::kAccounting);
  EXPECT_EQ(net.MasterHState(0, 1), BarrierNetwork::MasterState::kAccounting);
  EXPECT_EQ(net.MasterVState(0), BarrierNetwork::MasterState::kAccounting);
  EXPECT_EQ(net.SlaveHState(0, 1), BarrierNetwork::SlaveState::kSignaling);
  EXPECT_EQ(net.SlaveVState(0, 1), BarrierNetwork::SlaveState::kSignaling);
  EXPECT_EQ(net.ScntH(0, 0), 0u);
  EXPECT_EQ(net.ScntV(0), 0u);
}

TEST(BarrierNetDeath, DoubleArrivalAborts) {
  NetFixture f(2, 2);
  f.engine.ScheduleAt(0, [&]() {
    f.net->Arrive(0, 1, []() {});
    EXPECT_DEATH(f.net->Arrive(0, 1, []() {}), "arrived twice");
  });
  f.engine.RunUntil(0);
}

// Latency sweep across mesh sizes (ablation A's unit-level companion).
class MeshSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshSweep, AllCoresReleasedTogether) {
  const auto [rows, cols] = GetParam();
  NetFixture f(static_cast<std::uint32_t>(rows), static_cast<std::uint32_t>(cols));
  const auto n = static_cast<std::uint32_t>(rows * cols);
  const auto released = f.RunOneBarrier(std::vector<Cycle>(n, 10));
  const Cycle lo = *std::min_element(released.begin(), released.end());
  const Cycle hi = *std::max_element(released.begin(), released.end());
  EXPECT_GE(lo, 11u);
  // Within budget: 4 cycles (+1 skew). Relaxed lines may add a little.
  EXPECT_LE(hi, 10u + 8u);
  EXPECT_EQ(f.net->barriers_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 4},
                                           std::pair{4, 1}, std::pair{2, 2},
                                           std::pair{2, 4}, std::pair{4, 4},
                                           std::pair{4, 8}, std::pair{7, 7},
                                           std::pair{8, 8}));

// ---------------------------------------------------------------------------
// Extensions: multiple contexts, partial participation
// ---------------------------------------------------------------------------

TEST(BarrierNetExt, ContextsAreIndependent) {
  NetFixture f(2, 2, BarrierNetConfig{2, 6, TxPolicy::kReject});
  EXPECT_EQ(f.net->total_lines(), 12u);  // 2 contexts x 6 lines
  std::vector<Cycle> rel0(4, kCycleNever), rel1(4, kCycleNever);
  // Context 1 completes while context 0 is still gathering.
  for (CoreId c = 0; c < 4; ++c) {
    f.engine.ScheduleAt(10, [&, c]() {
      f.net->Arrive(1, c, [&, c]() { rel1[c] = f.engine.Now(); });
    });
  }
  for (CoreId c = 0; c < 3; ++c) {
    f.engine.ScheduleAt(12, [&, c]() {
      f.net->Arrive(0, c, [&, c]() { rel0[c] = f.engine.Now(); });
    });
  }
  f.engine.ScheduleAt(200, [&]() {
    f.net->Arrive(0, 3, [&]() { rel0[3] = f.engine.Now(); });
  });
  ASSERT_TRUE(f.engine.RunUntilIdle(10'000));
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_LE(rel1[c], 14u) << "ctx1 must not wait for ctx0";
    EXPECT_GE(rel0[c], 200u);
  }
}

TEST(BarrierNetExt, PartialParticipationSubsetOnly) {
  NetFixture f(2, 4);
  // Only row-0 cores participate.
  std::vector<bool> mask(8, false);
  for (CoreId c = 0; c < 4; ++c) mask[c] = true;
  f.net->SetParticipants(0, mask);
  std::vector<Cycle> arrivals(8, kCycleNever);
  for (CoreId c = 0; c < 4; ++c) arrivals[c] = 10;
  const auto released = f.RunOneBarrier(arrivals);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_NE(released[c], kCycleNever) << "participant " << c << " stuck";
    EXPECT_LE(released[c], 16u);
  }
  for (CoreId c = 4; c < 8; ++c) EXPECT_EQ(released[c], kCycleNever);
  EXPECT_EQ(f.net->barriers_completed(), 1u);
}

TEST(BarrierNetExt, PartialParticipationRepeats) {
  NetFixture f(4, 4);
  std::vector<bool> mask(16, false);
  // A scattered subset including master and slave nodes.
  for (CoreId c : {0u, 3u, 5u, 9u, 14u}) mask[c] = true;
  f.net->SetParticipants(0, mask);
  for (int episode = 0; episode < 10; ++episode) {
    const Cycle t = f.engine.Now() + 5;
    std::vector<Cycle> arrivals(16, kCycleNever);
    for (CoreId c : {0u, 3u, 5u, 9u, 14u}) arrivals[c] = t + c % 3;
    const auto released = f.RunOneBarrier(arrivals);
    for (CoreId c : {0u, 3u, 5u, 9u, 14u}) {
      ASSERT_NE(released[c], kCycleNever) << "episode " << episode;
    }
  }
  EXPECT_EQ(f.net->barriers_completed(), 10u);
}

TEST(BarrierNetExt, ResetThenReconfigureBetweenEpisodes) {
  // Reset + reconfiguration between episodes is legal and leaves the
  // network fully functional for a different participant set.
  NetFixture f(2, 2);
  const auto first = f.RunOneBarrier(std::vector<Cycle>(4, 10));
  for (CoreId c = 0; c < 4; ++c) ASSERT_NE(first[c], kCycleNever);
  f.net->ResetContext(0);
  f.net->SetParticipants(0, {true, true, false, false});  // row 0 only
  const Cycle t = f.engine.Now() + 5;
  std::vector<Cycle> arrivals(4, kCycleNever);
  arrivals[0] = t;
  arrivals[1] = t + 1;
  const auto second = f.RunOneBarrier(arrivals);
  EXPECT_NE(second[0], kCycleNever);
  EXPECT_NE(second[1], kCycleNever);
  EXPECT_EQ(second[2], kCycleNever);
  EXPECT_EQ(second[3], kCycleNever);
  EXPECT_EQ(f.net->barriers_completed(), 2u);
}

TEST(BarrierNetExtDeath, ResetWhileGatheringAborts) {
  NetFixture f(2, 2);
  f.engine.ScheduleAt(0, [&]() {
    f.net->Arrive(0, 1, []() {});
    EXPECT_DEATH(f.net->ResetContext(0), "gathering");
  });
  f.engine.RunUntil(0);
}

TEST(BarrierNetExtDeath, ResetDuringReleaseWaveAborts) {
  // All cores arrive at 10; at cycle 13 the release wave is mid-flight
  // (column-0 cores released, the others still waiting on MglineH).
  NetFixture f(2, 2);
  for (CoreId c = 0; c < 4; ++c) {
    f.engine.ScheduleAt(10, [&, c]() { f.net->Arrive(0, c, []() {}); });
  }
  f.engine.ScheduleAt(13, [&]() {
    EXPECT_DEATH(f.net->ResetContext(0), "awaits release");
  });
  ASSERT_TRUE(f.engine.RunUntilIdle(1'000));
}

TEST(BarrierNetExtDeath, NonParticipantArrivalAborts) {
  NetFixture f(2, 2);
  std::vector<bool> mask{true, true, true, false};
  f.net->SetParticipants(0, mask);
  f.engine.ScheduleAt(0, [&]() {
    EXPECT_DEATH(f.net->Arrive(0, 3, []() {}), "not a participant");
  });
  f.engine.RunUntil(0);
}

}  // namespace
}  // namespace glb::gline
