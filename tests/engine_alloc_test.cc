// Asserts the engine's bucket fast path is allocation-free in steady
// state: event nodes come from the recycled free list and sim::Task
// stores typical captures inline, so scheduling + dispatching
// near-future events never touches the heap. Global operator new is
// replaced in this binary to count allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/engine.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace glb::sim {
namespace {

TEST(EngineAlloc, BucketFastPathIsAllocationFree) {
  Engine e;
  std::uint64_t sink = 0;

  // The exact pattern of the hot loop: short-delta events whose
  // captures (a reference + a cycle) fit sim::Task's inline buffer,
  // scheduled from callbacks and from outside, drained to idle.
  const auto pattern = [&]() {
    for (int rep = 0; rep < 64; ++rep) {
      for (Cycle d = 0; d < 8; ++d) {
        e.ScheduleIn(d, [&sink, d]() { sink += d; });
      }
      e.ScheduleIn(1, [&e, &sink]() {
        e.ScheduleIn(0, [&sink]() { ++sink; });  // zero-delay chain
      });
      e.RunUntilIdle();
    }
  };

  pattern();  // warm: free list and vector capacities reach steady state
  const std::uint64_t before = g_allocs.load();
  pattern();
  EXPECT_EQ(g_allocs.load(), before)
      << "bucket fast path allocated " << (g_allocs.load() - before) << " times";
  EXPECT_GT(sink, 0u);
}

TEST(EngineAlloc, RecyclesNodesAcrossEpisodes) {
  // Many small episodes must not grow memory: after warmup, thousands
  // of further events reuse the same nodes.
  Engine e;
  std::uint64_t fired = 0;
  for (int i = 0; i < 32; ++i) {
    e.ScheduleIn(3, [&fired]() { ++fired; });
    e.RunUntilIdle();
  }
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 10000; ++i) {
    e.ScheduleIn(static_cast<Cycle>(i % 7), [&fired]() { ++fired; });
    e.RunUntilIdle();
  }
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(fired, 32u + 10000u);
}

}  // namespace
}  // namespace glb::sim
