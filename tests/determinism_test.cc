// Determinism regression gate for the engine swap: the bucketed-queue
// engine must reproduce runs byte-for-byte. Each scenario is executed
// twice in-process and its full textual output (walkthrough trace /
// JSON run manifest) compared for equality — any dependence on hash
// order, pointer values, or scheduling nondeterminism shows up as a
// diff. Also stresses the legacy ordering contract that interleaved
// zero-delay ScheduleIn(0) events run later in the same cycle, in
// scheduling order.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cmp/cmp_system.h"
#include "common/stats.h"
#include "gline/barrier_network.h"
#include "harness/experiment.h"
#include "harness/manifest.h"
#include "harness/parallel.h"
#include "harness/spec.h"
#include "sim/engine.h"
#include "workloads/em3d.h"
#include "workloads/synthetic.h"

namespace glb {
namespace {

/// The Figure-2 walkthrough (bench/fig2_gline_walkthrough.cc) distilled
/// to a string: controller states cycle by cycle plus release times on
/// a 2x2 mesh.
std::string Fig2Walkthrough() {
  std::ostringstream os;
  sim::Engine engine;
  StatSet stats;
  gline::BarrierNetwork net(engine, 2, 2, gline::BarrierNetConfig{}, stats);
  std::vector<Cycle> released(4, kCycleNever);
  engine.ScheduleAt(0, [&]() {
    for (CoreId c = 0; c < 4; ++c) {
      net.Arrive(0, c, [&, c]() { released[c] = engine.Now(); });
    }
  });
  for (Cycle t = 0; t <= 6; ++t) {
    engine.RunUntil(t);
    os << "cycle " << t << ":";
    for (std::uint32_t r = 0; r < 2; ++r) {
      os << " ScntH" << r << "=" << net.ScntH(0, r) << " Mcnt" << r << "="
         << net.McntH(0, r);
    }
    os << " ScntV=" << net.ScntV(0) << "\n";
  }
  engine.RunUntilIdle();
  for (CoreId c = 0; c < 4; ++c) os << "core" << c << "@" << released[c] << " ";
  return os.str();
}

/// One 16-core Figure-5 point (Synthetic, all three mechanisms),
/// serialized as the full JSON run manifests. Host-timing fields are
/// zeroed: they are wall-clock, explicitly outside the determinism
/// guarantee.
std::string Fig5Point16() {
  std::ostringstream os;
  for (const auto kind : {harness::BarrierKind::kCSW, harness::BarrierKind::kDSW,
                          harness::BarrierKind::kGL}) {
    const auto cfg = cmp::CmpConfig::WithCores(16);
    cmp::CmpSystem sys(cfg);
    workloads::Synthetic wl(30);
    wl.Init(sys);
    auto barrier = harness::MakeBarrier(kind, sys);
    const sim::RunStatus status = sys.RunProgramsStatus(
        [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); });
    harness::RunMetrics m =
        harness::CollectMetrics(sys, status, wl, harness::ToString(kind));
    EXPECT_TRUE(m.completed);
    EXPECT_TRUE(m.validation.empty()) << m.validation;
    m.wall_ms = 0.0;
    m.events_per_sec = 0.0;
    harness::ManifestOptions opts;
    opts.tool = "determinism_test";
    harness::WriteRunManifest(os, m, cfg, sys.stats(), opts);
    os << "\n";
  }
  return os.str();
}

/// The old-ordering stress pattern: many components scheduling
/// interleaved zero-delay continuations (the ScheduleIn(0) idiom the
/// G-line FSMs and cache controllers rely on), with some same-cycle
/// fan-out. Returns the exact firing transcript.
std::string ZeroDelayStress() {
  std::ostringstream os;
  sim::Engine e;
  for (int i = 0; i < 24; ++i) {
    e.ScheduleAt(static_cast<Cycle>(i % 5), [&os, &e, i]() {
      os << i << "@" << e.Now() << ";";
      e.ScheduleIn(0, [&os, &e, i]() {
        os << "z" << i << "@" << e.Now() << ";";
        if (i % 3 == 0) {
          e.ScheduleIn(0, [&os, i]() { os << "zz" << i << ";"; });
        }
      });
    });
  }
  EXPECT_TRUE(e.RunUntilIdle());
  return os.str();
}

TEST(Determinism, Fig2WalkthroughIsByteIdenticalAcrossRuns) {
  const std::string a = Fig2Walkthrough();
  const std::string b = Fig2Walkthrough();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The paper's headline: all four cores released by cycle 4.
  EXPECT_NE(a.find("core3@4"), std::string::npos) << a;
}

TEST(Determinism, Fig5PointManifestsAreByteIdenticalAcrossRuns) {
  const std::string a = Fig5Point16();
  const std::string b = Fig5Point16();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

/// A 256-core (16x16) hierarchical-barrier run serialized as the full
/// JSON manifest (including the hier config echo and every per-node
/// "glh.l<k>.c<i>.*" stat), host-timing fields zeroed.
std::string GlhPoint256() {
  std::ostringstream os;
  cmp::CmpConfig cfg = cmp::CmpConfig::WithCores(256);
  cfg.hier.enabled = true;
  cmp::CmpSystem sys(cfg);
  workloads::Synthetic wl(30);
  wl.Init(sys);
  auto barrier = harness::MakeBarrier(harness::BarrierKind::kGLH, sys);
  const sim::RunStatus status = sys.RunProgramsStatus(
      [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); });
  harness::RunMetrics m = harness::CollectMetrics(
      sys, status, wl, harness::ToString(harness::BarrierKind::kGLH));
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.validation.empty()) << m.validation;
  m.wall_ms = 0.0;
  m.events_per_sec = 0.0;
  harness::ManifestOptions opts;
  opts.tool = "determinism_test";
  harness::WriteRunManifest(os, m, cfg, sys.stats(), opts);
  return os.str();
}

TEST(Determinism, GlhPoint256ManifestIsByteIdenticalAcrossRuns) {
  const std::string a = GlhPoint256();
  const std::string b = GlhPoint256();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The hierarchical stats and config echo really are in the manifest.
  EXPECT_NE(a.find("glh.barriers_completed"), std::string::npos);
  EXPECT_NE(a.find("glh.l0.c0."), std::string::npos);
  EXPECT_NE(a.find("\"hier\""), std::string::npos);
}

/// A 1024-core (32x32) hierarchical-barrier EM3D run under the sharded
/// conservative-window engine, serialized as the full JSON manifest.
/// `work_skew` layers the deterministic straggler knob on top. All
/// host-side fields are zeroed: wall clock and events/sec are
/// non-deterministic by nature, and host_events depends on the
/// execution strategy (fast-forward replays whole compute phases as
/// single events — that is the point), while every simulated result
/// must stay byte-identical.
std::string Em3dShardedManifest(std::uint32_t shards, bool fast_forward,
                                double work_skew) {
  std::ostringstream os;
  cmp::CmpConfig cfg = cmp::CmpConfig::WithCores(1024);
  cfg.hier.enabled = true;
  cfg.shards = shards;
  cfg.fast_forward = fast_forward;
  cfg.fault.work_skew = work_skew;
  cmp::CmpSystem sys(cfg);
  workloads::Em3d::Config wcfg;
  wcfg.nodes = 2048;    // 2 nodes per class per core
  wcfg.timesteps = 6;   // >= 4 so fast-forward can engage (warmup 1 + 3)
  workloads::Em3d wl(wcfg);
  wl.Init(sys);
  auto barrier = harness::MakeBarrier(harness::BarrierKind::kGLH, sys);
  const sim::RunStatus status = sys.RunProgramsStatus(
      [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); });
  harness::RunMetrics m = harness::CollectMetrics(
      sys, status, wl, harness::ToString(harness::BarrierKind::kGLH));
  EXPECT_TRUE(m.completed);
  EXPECT_TRUE(m.validation.empty()) << m.validation;
  if (fast_forward) {
    EXPECT_NE(sys.fast_forward(), nullptr);
    EXPECT_TRUE(sys.fast_forward()->engaged())
        << "6 exactly periodic timesteps must engage the fast-forward";
  }
  m.wall_ms = 0.0;
  m.events_per_sec = 0.0;
  m.host_events = 0;
  harness::ManifestOptions opts;
  opts.tool = "determinism_test";
  harness::WriteRunManifest(os, m, cfg, sys.stats(), opts);
  return os.str();
}

TEST(Determinism, Em3d1024ManifestIsShardAndFastForwardInvariant) {
  const std::string base = Em3dShardedManifest(1, false, 0.0);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, Em3dShardedManifest(2, false, 0.0));
  EXPECT_EQ(base, Em3dShardedManifest(4, false, 0.0));
  EXPECT_EQ(base, Em3dShardedManifest(1, true, 0.0));
  EXPECT_EQ(base, Em3dShardedManifest(2, true, 0.0));
  EXPECT_EQ(base, Em3dShardedManifest(4, true, 0.0));
}

TEST(Determinism, Em3d1024StragglerManifestIsShardInvariant) {
  // Deterministic stragglers (work_skew stretches core i's compute by
  // 1 + S*i/(n-1)) are the one fault family windowed runs support; the
  // skewed schedule must stay layout-invariant too.
  const std::string base = Em3dShardedManifest(1, false, 0.25);
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base, Em3dShardedManifest(1, false, 0.0));  // the knob really bites
  EXPECT_EQ(base, Em3dShardedManifest(4, false, 0.25));
  EXPECT_EQ(base, Em3dShardedManifest(2, true, 0.25));
}

/// One 256-core Synthetic run of a zoo barrier, serialized as the full
/// JSON run manifest, host-timing fields zeroed. shards=0 is the
/// single-domain engine; >=1 the sharded conservative-window engine.
std::string ZooManifest256(harness::BarrierKind kind, std::uint32_t shards) {
  std::ostringstream os;
  cmp::CmpConfig cfg = cmp::CmpConfig::WithCores(256);
  cfg.shards = shards;
  cmp::CmpSystem sys(cfg);
  workloads::Synthetic wl(10);
  wl.Init(sys);
  auto barrier = harness::MakeBarrier(kind, sys);
  const sim::RunStatus status = sys.RunProgramsStatus(
      [&](core::Core& core, CoreId id) { return wl.Body(core, id, *barrier); });
  harness::RunMetrics m =
      harness::CollectMetrics(sys, status, wl, harness::ToString(kind));
  EXPECT_TRUE(m.completed) << harness::ToString(kind);
  EXPECT_TRUE(m.validation.empty()) << m.validation;
  m.wall_ms = 0.0;
  m.events_per_sec = 0.0;
  m.host_events = 0;
  harness::ManifestOptions opts;
  opts.tool = "determinism_test";
  harness::WriteRunManifest(os, m, cfg, sys.stats(), opts);
  return os.str();
}

/// Every zoo barrier (and the tuned meta-barrier, whose negotiation
/// round-trips through simulated memory) must produce byte-identical
/// manifests across shard counts on the sharded engine — the spin/flag
/// protocols may not depend on host scheduling. (Like the EM3D shard
/// contract above, this compares shards 1 vs 2, not legacy vs sharded:
/// the window engine registers extra coherence counters and commits in
/// canonical order, so its manifests differ from shards=0 by design.)
TEST(Determinism, ZooBarriers256ManifestsAreShardInvariant) {
  for (const auto kind :
       {harness::BarrierKind::kRDBL, harness::BarrierKind::kBRUCK,
        harness::BarrierKind::kTOURN, harness::BarrierKind::kRING,
        harness::BarrierKind::kGALOIS, harness::BarrierKind::kTUNED}) {
    const std::string base = ZooManifest256(kind, 1);
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(base, ZooManifest256(kind, 2)) << harness::ToString(kind);
  }
}

/// The parallel-experiment harness (--jobs 2: two runs in flight on
/// separate host threads) must reproduce the serial simulated results
/// exactly, including the tuned barrier's negotiated choice.
TEST(Determinism, ZooBarriers256MetricsAreJobsInvariant) {
  std::vector<harness::ExperimentSpec> specs;
  for (const auto kind :
       {harness::BarrierKind::kRDBL, harness::BarrierKind::kBRUCK,
        harness::BarrierKind::kTOURN, harness::BarrierKind::kRING,
        harness::BarrierKind::kGALOIS, harness::BarrierKind::kTUNED}) {
    harness::ExperimentSpec spec;
    spec.workload = "Synthetic";
    spec.scale.synthetic_iters = 10;
    spec.barrier = kind;
    spec.cfg = cmp::CmpConfig::WithCores(256);
    specs.push_back(std::move(spec));
  }
  const auto serial = harness::RunExperimentsParallel(specs, 1);
  const auto parallel = harness::RunExperimentsParallel(specs, 2);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(serial[i].completed) << serial[i].barrier;
    EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << serial[i].barrier;
    EXPECT_EQ(serial[i].barriers, parallel[i].barriers) << serial[i].barrier;
    EXPECT_EQ(serial[i].total_msgs(), parallel[i].total_msgs())
        << serial[i].barrier;
    EXPECT_EQ(serial[i].tuned_choice, parallel[i].tuned_choice)
        << serial[i].barrier;
    EXPECT_EQ(serial[i].tuned_measured_period, parallel[i].tuned_measured_period)
        << serial[i].barrier;
  }
}

TEST(Determinism, ZeroDelayInterleavingsAreStableAndOrdered) {
  const std::string a = ZeroDelayStress();
  const std::string b = ZeroDelayStress();
  EXPECT_EQ(a, b);
  // Spot-check the contract: component 0 fires at cycle 0 before its
  // zero-delay continuation, which still runs at cycle 0.
  EXPECT_NE(a.find("0@0;"), std::string::npos) << a;
  EXPECT_NE(a.find("z0@0;"), std::string::npos) << a;
  EXPECT_LT(a.find("0@0;"), a.find("z0@0;"));
}

}  // namespace
}  // namespace glb
