file(REMOVE_RECURSE
  "CMakeFiles/glbsim.dir/glbsim.cc.o"
  "CMakeFiles/glbsim.dir/glbsim.cc.o.d"
  "glbsim"
  "glbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
