# Empty compiler generated dependencies file for glbsim.
# This may be replaced when dependencies are built.
