file(REMOVE_RECURSE
  "CMakeFiles/glb_power.dir/energy_model.cc.o"
  "CMakeFiles/glb_power.dir/energy_model.cc.o.d"
  "libglb_power.a"
  "libglb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
