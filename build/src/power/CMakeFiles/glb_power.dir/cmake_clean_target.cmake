file(REMOVE_RECURSE
  "libglb_power.a"
)
