# Empty compiler generated dependencies file for glb_power.
# This may be replaced when dependencies are built.
