file(REMOVE_RECURSE
  "CMakeFiles/glb_common.dir/flags.cc.o"
  "CMakeFiles/glb_common.dir/flags.cc.o.d"
  "CMakeFiles/glb_common.dir/log.cc.o"
  "CMakeFiles/glb_common.dir/log.cc.o.d"
  "CMakeFiles/glb_common.dir/stats.cc.o"
  "CMakeFiles/glb_common.dir/stats.cc.o.d"
  "libglb_common.a"
  "libglb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
