# Empty dependencies file for glb_common.
# This may be replaced when dependencies are built.
