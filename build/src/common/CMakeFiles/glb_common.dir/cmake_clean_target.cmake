file(REMOVE_RECURSE
  "libglb_common.a"
)
