# Empty compiler generated dependencies file for glb_mem.
# This may be replaced when dependencies are built.
