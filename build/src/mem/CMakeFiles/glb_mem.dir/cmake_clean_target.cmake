file(REMOVE_RECURSE
  "libglb_mem.a"
)
