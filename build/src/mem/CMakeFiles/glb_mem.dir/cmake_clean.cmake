file(REMOVE_RECURSE
  "CMakeFiles/glb_mem.dir/backing_store.cc.o"
  "CMakeFiles/glb_mem.dir/backing_store.cc.o.d"
  "libglb_mem.a"
  "libglb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
