file(REMOVE_RECURSE
  "libglb_noc.a"
)
