# Empty dependencies file for glb_noc.
# This may be replaced when dependencies are built.
