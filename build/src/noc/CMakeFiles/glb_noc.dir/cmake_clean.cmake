file(REMOVE_RECURSE
  "CMakeFiles/glb_noc.dir/mesh.cc.o"
  "CMakeFiles/glb_noc.dir/mesh.cc.o.d"
  "libglb_noc.a"
  "libglb_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
