file(REMOVE_RECURSE
  "libglb_sync.a"
)
