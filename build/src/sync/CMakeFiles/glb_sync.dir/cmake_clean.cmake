file(REMOVE_RECURSE
  "CMakeFiles/glb_sync.dir/dissemination_barrier.cc.o"
  "CMakeFiles/glb_sync.dir/dissemination_barrier.cc.o.d"
  "CMakeFiles/glb_sync.dir/hybrid_barrier.cc.o"
  "CMakeFiles/glb_sync.dir/hybrid_barrier.cc.o.d"
  "CMakeFiles/glb_sync.dir/spinlock.cc.o"
  "CMakeFiles/glb_sync.dir/spinlock.cc.o.d"
  "CMakeFiles/glb_sync.dir/sw_barrier.cc.o"
  "CMakeFiles/glb_sync.dir/sw_barrier.cc.o.d"
  "libglb_sync.a"
  "libglb_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
