# Empty compiler generated dependencies file for glb_sync.
# This may be replaced when dependencies are built.
