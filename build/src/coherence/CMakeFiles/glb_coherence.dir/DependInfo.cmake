
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/checker.cc" "src/coherence/CMakeFiles/glb_coherence.dir/checker.cc.o" "gcc" "src/coherence/CMakeFiles/glb_coherence.dir/checker.cc.o.d"
  "/root/repo/src/coherence/dir_controller.cc" "src/coherence/CMakeFiles/glb_coherence.dir/dir_controller.cc.o" "gcc" "src/coherence/CMakeFiles/glb_coherence.dir/dir_controller.cc.o.d"
  "/root/repo/src/coherence/fabric.cc" "src/coherence/CMakeFiles/glb_coherence.dir/fabric.cc.o" "gcc" "src/coherence/CMakeFiles/glb_coherence.dir/fabric.cc.o.d"
  "/root/repo/src/coherence/l1_controller.cc" "src/coherence/CMakeFiles/glb_coherence.dir/l1_controller.cc.o" "gcc" "src/coherence/CMakeFiles/glb_coherence.dir/l1_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/glb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/glb_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
