file(REMOVE_RECURSE
  "libglb_coherence.a"
)
