file(REMOVE_RECURSE
  "CMakeFiles/glb_coherence.dir/checker.cc.o"
  "CMakeFiles/glb_coherence.dir/checker.cc.o.d"
  "CMakeFiles/glb_coherence.dir/dir_controller.cc.o"
  "CMakeFiles/glb_coherence.dir/dir_controller.cc.o.d"
  "CMakeFiles/glb_coherence.dir/fabric.cc.o"
  "CMakeFiles/glb_coherence.dir/fabric.cc.o.d"
  "CMakeFiles/glb_coherence.dir/l1_controller.cc.o"
  "CMakeFiles/glb_coherence.dir/l1_controller.cc.o.d"
  "libglb_coherence.a"
  "libglb_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
