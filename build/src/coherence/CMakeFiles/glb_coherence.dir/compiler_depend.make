# Empty compiler generated dependencies file for glb_coherence.
# This may be replaced when dependencies are built.
