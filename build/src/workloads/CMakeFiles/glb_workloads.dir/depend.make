# Empty dependencies file for glb_workloads.
# This may be replaced when dependencies are built.
