file(REMOVE_RECURSE
  "CMakeFiles/glb_workloads.dir/em3d.cc.o"
  "CMakeFiles/glb_workloads.dir/em3d.cc.o.d"
  "CMakeFiles/glb_workloads.dir/livermore.cc.o"
  "CMakeFiles/glb_workloads.dir/livermore.cc.o.d"
  "CMakeFiles/glb_workloads.dir/ocean.cc.o"
  "CMakeFiles/glb_workloads.dir/ocean.cc.o.d"
  "CMakeFiles/glb_workloads.dir/unstructured.cc.o"
  "CMakeFiles/glb_workloads.dir/unstructured.cc.o.d"
  "libglb_workloads.a"
  "libglb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
