file(REMOVE_RECURSE
  "libglb_workloads.a"
)
