file(REMOVE_RECURSE
  "CMakeFiles/glb_gline.dir/barrier_mux.cc.o"
  "CMakeFiles/glb_gline.dir/barrier_mux.cc.o.d"
  "CMakeFiles/glb_gline.dir/barrier_network.cc.o"
  "CMakeFiles/glb_gline.dir/barrier_network.cc.o.d"
  "CMakeFiles/glb_gline.dir/gline.cc.o"
  "CMakeFiles/glb_gline.dir/gline.cc.o.d"
  "CMakeFiles/glb_gline.dir/hierarchy.cc.o"
  "CMakeFiles/glb_gline.dir/hierarchy.cc.o.d"
  "libglb_gline.a"
  "libglb_gline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_gline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
