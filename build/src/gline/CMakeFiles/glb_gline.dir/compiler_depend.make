# Empty compiler generated dependencies file for glb_gline.
# This may be replaced when dependencies are built.
