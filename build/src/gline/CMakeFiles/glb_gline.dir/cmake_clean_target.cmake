file(REMOVE_RECURSE
  "libglb_gline.a"
)
