file(REMOVE_RECURSE
  "libglb_core.a"
)
