file(REMOVE_RECURSE
  "CMakeFiles/glb_core.dir/core.cc.o"
  "CMakeFiles/glb_core.dir/core.cc.o.d"
  "libglb_core.a"
  "libglb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
