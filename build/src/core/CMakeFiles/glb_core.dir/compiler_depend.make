# Empty compiler generated dependencies file for glb_core.
# This may be replaced when dependencies are built.
