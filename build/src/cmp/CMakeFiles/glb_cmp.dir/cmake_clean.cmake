file(REMOVE_RECURSE
  "CMakeFiles/glb_cmp.dir/cmp_system.cc.o"
  "CMakeFiles/glb_cmp.dir/cmp_system.cc.o.d"
  "libglb_cmp.a"
  "libglb_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
