file(REMOVE_RECURSE
  "libglb_cmp.a"
)
