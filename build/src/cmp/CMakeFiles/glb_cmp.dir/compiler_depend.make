# Empty compiler generated dependencies file for glb_cmp.
# This may be replaced when dependencies are built.
