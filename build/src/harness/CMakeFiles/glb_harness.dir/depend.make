# Empty dependencies file for glb_harness.
# This may be replaced when dependencies are built.
