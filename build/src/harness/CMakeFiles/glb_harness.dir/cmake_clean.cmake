file(REMOVE_RECURSE
  "CMakeFiles/glb_harness.dir/experiment.cc.o"
  "CMakeFiles/glb_harness.dir/experiment.cc.o.d"
  "CMakeFiles/glb_harness.dir/report.cc.o"
  "CMakeFiles/glb_harness.dir/report.cc.o.d"
  "libglb_harness.a"
  "libglb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
