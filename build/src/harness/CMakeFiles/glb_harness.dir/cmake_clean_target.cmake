file(REMOVE_RECURSE
  "libglb_harness.a"
)
