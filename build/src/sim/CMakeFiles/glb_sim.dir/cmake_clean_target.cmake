file(REMOVE_RECURSE
  "libglb_sim.a"
)
