# Empty compiler generated dependencies file for glb_sim.
# This may be replaced when dependencies are built.
