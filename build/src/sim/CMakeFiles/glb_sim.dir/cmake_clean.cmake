file(REMOVE_RECURSE
  "CMakeFiles/glb_sim.dir/engine.cc.o"
  "CMakeFiles/glb_sim.dir/engine.cc.o.d"
  "libglb_sim.a"
  "libglb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
