# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_random_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/gline_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/sync2_test[1]_include.cmake")
include("/root/repo/build/tests/gline_fuzz_test[1]_include.cmake")
