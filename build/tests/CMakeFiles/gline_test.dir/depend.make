# Empty dependencies file for gline_test.
# This may be replaced when dependencies are built.
