
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gline_test.cc" "tests/CMakeFiles/gline_test.dir/gline_test.cc.o" "gcc" "tests/CMakeFiles/gline_test.dir/gline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/glb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/glb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/glb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/glb_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/glb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/gline/CMakeFiles/glb_gline.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/glb_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/glb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/glb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/glb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/glb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/glb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
