file(REMOVE_RECURSE
  "CMakeFiles/gline_test.dir/gline_test.cc.o"
  "CMakeFiles/gline_test.dir/gline_test.cc.o.d"
  "gline_test"
  "gline_test.pdb"
  "gline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
