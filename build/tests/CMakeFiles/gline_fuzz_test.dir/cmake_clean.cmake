file(REMOVE_RECURSE
  "CMakeFiles/gline_fuzz_test.dir/gline_fuzz_test.cc.o"
  "CMakeFiles/gline_fuzz_test.dir/gline_fuzz_test.cc.o.d"
  "gline_fuzz_test"
  "gline_fuzz_test.pdb"
  "gline_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gline_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
