# Empty compiler generated dependencies file for gline_fuzz_test.
# This may be replaced when dependencies are built.
