# Empty compiler generated dependencies file for sync2_test.
# This may be replaced when dependencies are built.
