file(REMOVE_RECURSE
  "CMakeFiles/sync2_test.dir/sync2_test.cc.o"
  "CMakeFiles/sync2_test.dir/sync2_test.cc.o.d"
  "sync2_test"
  "sync2_test.pdb"
  "sync2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
