file(REMOVE_RECURSE
  "CMakeFiles/ablate_barrier_period.dir/ablate_barrier_period.cc.o"
  "CMakeFiles/ablate_barrier_period.dir/ablate_barrier_period.cc.o.d"
  "ablate_barrier_period"
  "ablate_barrier_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_barrier_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
