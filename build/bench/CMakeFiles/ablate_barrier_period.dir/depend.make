# Empty dependencies file for ablate_barrier_period.
# This may be replaced when dependencies are built.
