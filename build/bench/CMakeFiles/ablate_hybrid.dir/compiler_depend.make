# Empty compiler generated dependencies file for ablate_hybrid.
# This may be replaced when dependencies are built.
