file(REMOVE_RECURSE
  "CMakeFiles/ablate_hybrid.dir/ablate_hybrid.cc.o"
  "CMakeFiles/ablate_hybrid.dir/ablate_hybrid.cc.o.d"
  "ablate_hybrid"
  "ablate_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
