# Empty compiler generated dependencies file for fig6_exec_breakdown.
# This may be replaced when dependencies are built.
