# Empty compiler generated dependencies file for ablate_gline_scaling.
# This may be replaced when dependencies are built.
