file(REMOVE_RECURSE
  "CMakeFiles/ablate_gline_scaling.dir/ablate_gline_scaling.cc.o"
  "CMakeFiles/ablate_gline_scaling.dir/ablate_gline_scaling.cc.o.d"
  "ablate_gline_scaling"
  "ablate_gline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_gline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
