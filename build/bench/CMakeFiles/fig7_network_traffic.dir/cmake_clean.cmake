file(REMOVE_RECURSE
  "CMakeFiles/fig7_network_traffic.dir/fig7_network_traffic.cc.o"
  "CMakeFiles/fig7_network_traffic.dir/fig7_network_traffic.cc.o.d"
  "fig7_network_traffic"
  "fig7_network_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_network_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
