# Empty compiler generated dependencies file for fig7_network_traffic.
# This may be replaced when dependencies are built.
