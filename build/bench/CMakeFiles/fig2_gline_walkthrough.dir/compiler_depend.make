# Empty compiler generated dependencies file for fig2_gline_walkthrough.
# This may be replaced when dependencies are built.
