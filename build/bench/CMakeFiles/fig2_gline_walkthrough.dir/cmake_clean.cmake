file(REMOVE_RECURSE
  "CMakeFiles/fig2_gline_walkthrough.dir/fig2_gline_walkthrough.cc.o"
  "CMakeFiles/fig2_gline_walkthrough.dir/fig2_gline_walkthrough.cc.o.d"
  "fig2_gline_walkthrough"
  "fig2_gline_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gline_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
