file(REMOVE_RECURSE
  "CMakeFiles/ablate_hotspot_traffic.dir/ablate_hotspot_traffic.cc.o"
  "CMakeFiles/ablate_hotspot_traffic.dir/ablate_hotspot_traffic.cc.o.d"
  "ablate_hotspot_traffic"
  "ablate_hotspot_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hotspot_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
