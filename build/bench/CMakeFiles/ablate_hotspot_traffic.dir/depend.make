# Empty dependencies file for ablate_hotspot_traffic.
# This may be replaced when dependencies are built.
