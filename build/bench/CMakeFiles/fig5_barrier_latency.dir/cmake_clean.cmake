file(REMOVE_RECURSE
  "CMakeFiles/fig5_barrier_latency.dir/fig5_barrier_latency.cc.o"
  "CMakeFiles/fig5_barrier_latency.dir/fig5_barrier_latency.cc.o.d"
  "fig5_barrier_latency"
  "fig5_barrier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_barrier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
