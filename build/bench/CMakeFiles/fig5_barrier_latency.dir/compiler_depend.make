# Empty compiler generated dependencies file for fig5_barrier_latency.
# This may be replaced when dependencies are built.
