file(REMOVE_RECURSE
  "CMakeFiles/manycore_hierarchy.dir/manycore_hierarchy.cpp.o"
  "CMakeFiles/manycore_hierarchy.dir/manycore_hierarchy.cpp.o.d"
  "manycore_hierarchy"
  "manycore_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manycore_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
