# Empty compiler generated dependencies file for manycore_hierarchy.
# This may be replaced when dependencies are built.
