file(REMOVE_RECURSE
  "CMakeFiles/barrier_shootout.dir/barrier_shootout.cpp.o"
  "CMakeFiles/barrier_shootout.dir/barrier_shootout.cpp.o.d"
  "barrier_shootout"
  "barrier_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
