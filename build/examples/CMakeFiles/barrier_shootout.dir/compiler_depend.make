# Empty compiler generated dependencies file for barrier_shootout.
# This may be replaced when dependencies are built.
