# Empty dependencies file for gline_scaling.
# This may be replaced when dependencies are built.
