file(REMOVE_RECURSE
  "CMakeFiles/gline_scaling.dir/gline_scaling.cpp.o"
  "CMakeFiles/gline_scaling.dir/gline_scaling.cpp.o.d"
  "gline_scaling"
  "gline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
